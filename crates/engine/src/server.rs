//! TCP serving layer: a newline-delimited text protocol over a
//! [`Router`] of named engines, with graceful drain, a connection cap,
//! and optional token authentication.
//!
//! # Wire protocol
//!
//! One request per line, one response line per request, UTF-8, fields
//! separated by single spaces:
//!
//! ```text
//! QUERY <k> <v1> ... <vd>  ->  OK <id>:<dist>,<id>:<dist>,...
//! PING                     ->  PONG
//! STATS                    ->  STATS index=<name> <EngineStats as one line>
//! INDEXINFO                ->  INDEXINFO name=<name> points=... dim=... m=... c=... epoch=... reindexing=... state=... pct=... shards=...
//! LISTINDEXES              ->  INDEXES <name1>,<name2>,...   (sorted; bare "INDEXES" when empty)
//! USE <name>               ->  OK using <name>
//! AUTH <token>             ->  OK authenticated
//! ATTACH <name> <path>     ->  OK attached <name> points=<n> dim=<d> secs=<s>   (auth-gated)
//! DETACH <name>            ->  OK detached <name>                               (auth-gated)
//! REINDEX <path>           ->  OK index=<name> epoch=<e> points=<n> secs=<s>    (auth-gated)
//! INSERT <v1> ... <vd>     ->  OK id=<id> epoch=<e> points=<n>                  (auth-gated)
//! DELETE <id>              ->  OK deleted <id> epoch=<e> points=<n>             (auth-gated)
//! SAVE <path>              ->  OK saved <name> points=<n> bytes=<b> secs=<s>    (auth-gated)
//! QUIT                     ->  BYE (and the server closes the connection)
//! anything else            ->  ERR <message>
//! ```
//!
//! `QUERY`, `STATS`, `INDEXINFO`, `REINDEX`, `INSERT`, `DELETE` and
//! `SAVE` operate on the connection's *current* index — the router's
//! default at connect time, switched with `USE`. When
//! [`ServerConfig::auth_token`] is set, the mutating verbs
//! (`REINDEX`/`ATTACH`/`DETACH`/`INSERT`/`DELETE`) and `SAVE` (which
//! writes server-side files) answer `ERR authentication required` until
//! the connection sends a matching `AUTH <token>`; without a configured
//! token they are open (and `AUTH` answers `OK authentication not
//! required`).
//!
//! `ATTACH` auto-detects the file format: a `.pmlsh` snapshot (by magic
//! bytes — see `pm-lsh-persist`) is loaded directly and serves within
//! milliseconds with its saved parameters; a sharded manifest (also by
//! magic bytes) restores the whole shard set as one [`ShardedEngine`];
//! fvecs/csv datasets are built from scratch with
//! [`ServerConfig::attach_params`].
//! `INSERT`/`DELETE` publish a fresh snapshot per call (each bumps the
//! `INDEXINFO` epoch); a `QUERY` after an `OK` reply observes the
//! mutation.
//!
//! Malformed input never takes the server down: every parse failure is an
//! `ERR` response, every I/O failure closes only that connection, a `k`
//! beyond the indexed point count is clamped, and request lines are
//! capped at `max(512, 64 + 32·d)` bytes of the current index (512 with
//! none selected). The full specification, with a worked `nc`
//! transcript, lives in `docs/PROTOCOL.md`.
//!
//! # Serving lifecycle
//!
//! The accept loop runs on its own thread and spawns one handler thread
//! per connection, registering each in a connection registry:
//!
//! * **Connection cap** — at [`ServerConfig::max_connections`] live
//!   connections, further accepts are answered
//!   `ERR server at connection capacity` and closed immediately; the
//!   accept loop itself never blocks on a full registry.
//! * **Accept-error backoff** — persistent `accept()` failures (e.g. fd
//!   exhaustion, `EMFILE`) back off exponentially (capped at
//!   [`MAX_ACCEPT_BACKOFF`]) instead of busy-looping at 100% CPU.
//! * **Graceful drain** — [`ServerHandle::shutdown`] stops accepting
//!   (a connection that slips through the shutdown race is answered
//!   `ERR server shutting down`, not silently dropped), signals every
//!   handler, and waits for them to finish their in-flight request —
//!   replies in progress arrive intact. Handlers notice the drain within
//!   [`DRAIN_POLL`] at the latest; whoever is still alive at the drain
//!   deadline has its socket force-closed. The outcome is reported as a
//!   [`DrainReport`].
//!
//! Binding port 0 picks a free port — [`ServerHandle::addr`] reports it,
//! which is how the loopback tests run without port clashes.

use crate::router::Router;
use crate::{Engine, EngineConfig, QueryError, ShardedEngine};
use pm_lsh_core::{BuildOptions, PmLsh, PmLshParams};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{
    IpAddr, Ipv4Addr, Ipv6Addr, Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often an idle connection handler wakes from its blocking read to
/// check for a drain in progress — the upper bound on how long an idle
/// connection delays a drain.
pub const DRAIN_POLL: Duration = Duration::from_millis(200);

/// Longest sleep between consecutive failing `accept()` calls.
pub const MAX_ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Serving-layer knobs (the engine itself is tuned via [`EngineConfig`]).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Most simultaneous live connections; further accepts are answered
    /// `ERR server at connection capacity` and closed.
    pub max_connections: usize,
    /// How long [`ServerHandle::shutdown`] (and the handle's `Drop`)
    /// waits for in-flight connections before force-closing them.
    pub drain_timeout: Duration,
    /// When set, `REINDEX`/`ATTACH`/`DETACH` require a prior
    /// `AUTH <token>` on the same connection.
    pub auth_token: Option<String>,
    /// Index parameters for datasets attached over the wire
    /// (`ATTACH <name> <path>`).
    pub attach_params: PmLshParams,
    /// Engine configuration (worker pool, batcher) for engines created by
    /// wire `ATTACH` — each attached index runs its own pool.
    pub attach_engine_config: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 1024,
            drain_timeout: Duration::from_secs(5),
            auth_token: None,
            attach_params: PmLshParams::default(),
            attach_engine_config: EngineConfig::default(),
        }
    }
}

/// How a shutdown's drain went.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// `true` when no live connection remains (cleanly or after forcing).
    pub drained: bool,
    /// Connections whose sockets had to be force-closed at the deadline.
    pub forced: usize,
}

/// A running server: the accept thread, the connection registry, and the
/// shutdown switch.
///
/// Dropping the handle drains the server with the configured
/// [`ServerConfig::drain_timeout`]; call [`ServerHandle::join`] instead to
/// serve until the process dies.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connections right now.
    pub fn connections(&self) -> usize {
        self.shared.registry.live()
    }

    /// Blocks until the accept thread exits (i.e. forever, unless another
    /// handle clone... there is none — effectively: serve until killed).
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Gracefully drains with the configured
    /// [`ServerConfig::drain_timeout`]: stops accepting, lets every
    /// in-flight request finish and its reply arrive intact, tells each
    /// connection `ERR server shutting down`, and waits for the handlers
    /// to exit. Connections still alive at the deadline are force-closed.
    pub fn shutdown(mut self) -> DrainReport {
        let timeout = self.shared.config.drain_timeout;
        self.drain(timeout)
    }

    /// [`ServerHandle::shutdown`] with an explicit drain deadline.
    pub fn shutdown_within(mut self, timeout: Duration) -> DrainReport {
        self.drain(timeout)
    }

    fn drain(&mut self, timeout: Duration) -> DrainReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.registry.begin_drain();
        // The accept loop is blocked in accept(); poke it with a throwaway
        // connection so it observes the flag. An unspecified bind address
        // (0.0.0.0 / ::) is not connectable on every platform, so aim the
        // poke at the loopback of the same family instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Handlers notice the drain within DRAIN_POLL when idle, or right
        // after finishing their in-flight request; wait for all of them.
        let deadline = Instant::now() + timeout;
        let mut forced = 0;
        if !self.shared.registry.wait_drained(deadline) {
            // Past the deadline: force the stragglers' sockets closed so
            // their blocked reads return, then give them a short grace
            // period to unwind and deregister. A handler wedged inside the
            // engine (not in socket I/O) may outlive even this; it holds
            // its own Arcs and dies with the process.
            forced = self.shared.registry.force_close_all();
            let grace = Instant::now() + Duration::from_millis(500);
            let _ = self.shared.registry.wait_drained(grace);
        }
        DrainReport {
            drained: self.shared.registry.live() == 0,
            forced,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            let timeout = self.shared.config.drain_timeout;
            self.drain(timeout);
        }
    }
}

/// Serves a single engine under the index name `"default"` with a default
/// [`ServerConfig`] — the one-dataset convenience over [`serve_router`].
/// Accepts a plain [`Engine`] (serving it as a single shard) or a
/// [`ShardedEngine`].
pub fn serve(
    engine: impl Into<ShardedEngine>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    let router = Router::with_engine("default", engine)
        .expect("'default' is a valid index name for a fresh router");
    serve_router(router, addr, ServerConfig::default())
}

/// Binds `addr` (e.g. `("127.0.0.1", 0)` or `"0.0.0.0:7878"`) and serves
/// every index attached to `router` — including ones attached or detached
/// while running — until the returned handle is shut down or dropped.
pub fn serve_router(
    router: Router,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        router,
        config,
        stop: AtomicBool::new(false),
        registry: ConnRegistry::new(),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name("pmlsh-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
    })
}

/// Everything the accept loop and the connection handlers share.
#[derive(Debug)]
struct Shared {
    router: Router,
    config: ServerConfig,
    stop: AtomicBool,
    registry: ConnRegistry,
}

/// The live-connection registry: the connection cap, the drain signal,
/// and the socket clones a deadline-overrunning drain force-closes.
#[derive(Debug)]
struct ConnRegistry {
    inner: Mutex<RegistryInner>,
    changed: Condvar,
    draining: AtomicBool,
}

#[derive(Debug)]
struct RegistryInner {
    /// Live connection id -> a `try_clone` of its socket (`None` when the
    /// clone failed; such a connection cannot be force-closed, only
    /// waited for).
    sockets: HashMap<u64, Option<TcpStream>>,
    next_id: u64,
}

enum Registration {
    Registered(u64),
    AtCapacity,
    Draining,
}

impl ConnRegistry {
    fn new() -> Self {
        Self {
            inner: Mutex::new(RegistryInner {
                sockets: HashMap::new(),
                next_id: 0,
            }),
            changed: Condvar::new(),
            draining: AtomicBool::new(false),
        }
    }

    fn try_register(&self, socket: Option<TcpStream>, max_connections: usize) -> Registration {
        if self.is_draining() {
            return Registration::Draining;
        }
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        if inner.sockets.len() >= max_connections {
            return Registration::AtCapacity;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.sockets.insert(id, socket);
        Registration::Registered(id)
    }

    fn deregister(&self, id: u64) {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        inner.sockets.remove(&id);
        drop(inner);
        self.changed.notify_all();
    }

    fn live(&self) -> usize {
        self.inner
            .lock()
            .expect("registry lock poisoned")
            .sockets
            .len()
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Waits until every connection has deregistered or `deadline`
    /// passes; `true` means fully drained.
    fn wait_drained(&self, deadline: Instant) -> bool {
        let mut inner = self.inner.lock().expect("registry lock poisoned");
        while !inner.sockets.is_empty() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(inner, deadline - now)
                .expect("registry lock poisoned");
            inner = guard;
        }
        true
    }

    /// Shuts down every still-registered socket (waking its handler's
    /// blocked read with EOF) and returns how many connections that hit.
    fn force_close_all(&self) -> usize {
        let inner = self.inner.lock().expect("registry lock poisoned");
        for socket in inner.sockets.values().flatten() {
            let _ = socket.shutdown(Shutdown::Both);
        }
        inner.sockets.len()
    }
}

/// Deregisters a connection however its handler exits (return, `?`, or
/// panic).
struct ConnGuard<'a> {
    registry: &'a ConnRegistry,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.registry.deregister(self.id);
    }
}

/// What the accept loop polls: `TcpListener` in production, fakes in the
/// accept-error and shutdown-race tests.
trait Acceptor {
    fn accept(&self) -> std::io::Result<TcpStream>;
}

impl Acceptor for TcpListener {
    fn accept(&self) -> std::io::Result<TcpStream> {
        TcpListener::accept(self).map(|(stream, _)| stream)
    }
}

/// Sleep after the `n`-th consecutive `accept()` error (n >= 1):
/// 500 µs doubling up to [`MAX_ACCEPT_BACKOFF`]. Under persistent fd
/// exhaustion (`EMFILE`) the old `continue`-on-error loop span a full
/// core; this bounds it to ~20 attempts/s while recovering in one
/// successful accept.
fn accept_backoff(consecutive_errors: u32) -> Duration {
    let base = Duration::from_micros(500);
    let doublings = consecutive_errors.saturating_sub(1).min(10);
    (base * 2u32.pow(doublings)).min(MAX_ACCEPT_BACKOFF)
}

fn accept_loop<A: Acceptor>(acceptor: &A, shared: &Arc<Shared>) {
    let mut consecutive_errors = 0u32;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match acceptor.accept() {
            Ok(stream) => {
                consecutive_errors = 0;
                stream
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                consecutive_errors += 1;
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(accept_backoff(consecutive_errors));
                continue;
            }
        };
        // A connection can be accepted between the shutdown flag store and
        // the wake poke; tell it what is happening instead of abandoning
        // it without a byte. (The poke itself lands here too — harmless.)
        if shared.stop.load(Ordering::SeqCst) {
            refuse(stream, b"ERR server shutting down\n");
            return;
        }
        match shared
            .registry
            .try_register(stream.try_clone().ok(), shared.config.max_connections)
        {
            Registration::Registered(id) => {
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("pmlsh-conn".to_string())
                    .spawn(move || {
                        let _guard = ConnGuard {
                            registry: &conn_shared.registry,
                            id,
                        };
                        let _ = handle_connection(stream, &conn_shared);
                    });
                if spawned.is_err() {
                    // Out of threads: drop the connection, not the server.
                    shared.registry.deregister(id);
                }
            }
            Registration::AtCapacity => refuse(stream, b"ERR server at connection capacity\n"),
            Registration::Draining => {
                refuse(stream, b"ERR server shutting down\n");
                return;
            }
        }
    }
}

/// Answers a connection the server will not serve with a final `ERR` line
/// and closes it. Best-effort: a refusal must never block the accept loop
/// on a slow peer.
fn refuse(mut stream: TcpStream, message: &[u8]) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.write_all(message);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-connection protocol state.
struct ConnState {
    /// The index `QUERY`/`STATS`/`INDEXINFO`/`REINDEX` route to. Starts
    /// at the router's default; switched with `USE`. The name can go
    /// stale (`DETACH`), in which case routed verbs answer `ERR`.
    index: Option<String>,
    /// `true` once the connection may use mutating verbs — immediately
    /// when no [`ServerConfig::auth_token`] is set, after a correct
    /// `AUTH` otherwise.
    authed: bool,
    /// The current index's dimensionality (0 with none selected), cached
    /// per connection so the per-line path costs no snapshot load — a
    /// snapshot invariant (reindex rejects dimension changes), refreshed
    /// on `USE`.
    dim: usize,
    /// Request-line byte cap, derived from `dim` (512 floor).
    line_cap: usize,
}

impl ConnState {
    /// Points this connection at `engine` under `name` (or at nothing).
    fn select(&mut self, name: Option<String>, engine: Option<&ShardedEngine>) {
        self.index = name;
        self.dim = engine.map_or(0, ShardedEngine::dim);
        // A legitimate line is `QUERY <k> <v1..vd>`: ~32 bytes per float
        // is generous; the 512-byte floor leaves room for ATTACH/REINDEX
        // paths even at tiny dimensionalities (and with no index selected
        // at all).
        self.line_cap = (64 + 32 * self.dim).max(512);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    // The read timeout is the drain-reaction clock: an idle handler wakes
    // at this cadence to check for a shutdown in progress.
    stream.set_read_timeout(Some(DRAIN_POLL)).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut conn = ConnState {
        index: None,
        authed: shared.config.auth_token.is_none(),
        dim: 0,
        line_cap: 0,
    };
    let index = shared.router.default_name();
    let engine = index.as_deref().and_then(|name| shared.router.get(name));
    conn.select(index, engine.as_ref());
    let mut line = Vec::with_capacity(256);
    loop {
        match read_request(&mut reader, &mut line, conn.line_cap, &shared.registry)? {
            ReadOutcome::Eof => return Ok(()),
            ReadOutcome::Draining => {
                // Drain in progress: one explanatory line, then close.
                let _ = writer.write_all(b"ERR server shutting down\n");
                let _ = writer.flush();
                return Ok(());
            }
            ReadOutcome::Oversized => {
                writer.write_all(b"ERR line exceeds protocol maximum\n")?;
                writer.flush()?;
                return Ok(());
            }
            ReadOutcome::Line => {}
        }
        let text = String::from_utf8_lossy(&line);
        match respond(&text, shared, &mut conn) {
            Response::Line(text) => {
                writer.write_all(text.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
            }
            Response::Close => {
                writer.write_all(b"BYE\n")?;
                writer.flush()?;
                return Ok(());
            }
            Response::Ignore => {}
        }
    }
}

enum ReadOutcome {
    /// A request line landed in the buffer (possibly unterminated at EOF).
    Line,
    /// Clean end of stream between requests.
    Eof,
    /// The peer exceeded the line cap without a newline.
    Oversized,
    /// A drain began while waiting for (or mid-way through) a line.
    Draining,
}

/// Reads one request line through the cap, waking every [`DRAIN_POLL`]
/// (the socket's read timeout) to check for a drain in progress. Partial
/// bytes accumulated before a timeout stay in `line` and keep
/// accumulating afterwards.
///
/// The drain flag is only consulted when the read comes up empty: a
/// request the client already finished writing is read and answered even
/// if the drain lands first — the protocol promises that every owed
/// reply is delivered before `ERR server shutting down`. (A client that
/// keeps the pipeline saturated can ride that promise only until the
/// drain deadline force-closes its socket.)
fn read_request(
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
    cap: usize,
    registry: &ConnRegistry,
) -> std::io::Result<ReadOutcome> {
    use std::io::ErrorKind;
    line.clear();
    loop {
        if line.len() > cap {
            return Ok(ReadOutcome::Oversized);
        }
        let budget = (cap + 1 - line.len()) as u64;
        match std::io::Read::take(&mut *reader, budget).read_until(b'\n', line) {
            Ok(0) => {
                // True EOF (the budget is never 0 here). A final
                // unterminated line still gets answered.
                return Ok(if line.is_empty() {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Line
                });
            }
            Ok(_) => {
                if line.last() == Some(&b'\n') {
                    return Ok(ReadOutcome::Line);
                }
                // No newline: either the take-budget ran out (the next
                // iteration flags the oversize) or more bytes are in
                // flight — keep reading.
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // The socket is quiet (a partially written line, if any,
                // stays accumulated in `line`): the natural point to
                // react to a drain.
                if registry.is_draining() {
                    return Ok(ReadOutcome::Draining);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

enum Response {
    Line(String),
    Close,
    Ignore,
}

fn respond(line: &str, shared: &Shared, conn: &mut ConnState) -> Response {
    let line = line.trim();
    if line.is_empty() {
        return Response::Ignore;
    }
    let mut fields = line.split_ascii_whitespace();
    match fields.next() {
        Some("QUERY") => Response::Line(answer_query(fields, shared, conn)),
        Some("PING") => Response::Line("PONG".to_string()),
        Some("STATS") => Response::Line(match current_engine(shared, conn) {
            Ok((name, engine)) => format!("STATS index={name} {}", engine.stats()),
            Err(err) => err,
        }),
        Some("INDEXINFO") => Response::Line(match current_engine(shared, conn) {
            Ok((name, engine)) => format!("INDEXINFO name={name} {}", engine.info()),
            Err(err) => err,
        }),
        Some("LISTINDEXES") => {
            let names = shared.router.names();
            Response::Line(if names.is_empty() {
                "INDEXES".to_string()
            } else {
                format!("INDEXES {}", names.join(","))
            })
        }
        Some("USE") => Response::Line(answer_use(fields, shared, conn)),
        Some("AUTH") => Response::Line(answer_auth(fields, shared, conn)),
        Some("ATTACH") => Response::Line(answer_attach(fields, shared, conn)),
        Some("DETACH") => Response::Line(answer_detach(fields, shared, conn)),
        Some("REINDEX") => Response::Line(answer_reindex(fields, shared, conn)),
        Some("INSERT") => Response::Line(answer_insert(fields, shared, conn)),
        Some("DELETE") => Response::Line(answer_delete(fields, shared, conn)),
        Some("SAVE") => Response::Line(answer_save(fields, shared, conn)),
        Some("QUIT") => Response::Close,
        Some(other) => Response::Line(format!("ERR unknown command '{other}'")),
        None => Response::Ignore,
    }
}

/// Resolves the connection's current index to a live engine, or the `ERR`
/// line explaining why it cannot.
fn current_engine(shared: &Shared, conn: &ConnState) -> Result<(String, ShardedEngine), String> {
    let Some(name) = conn.index.as_deref() else {
        return Err("ERR no index attached (ATTACH one, then USE it)".to_string());
    };
    match shared.router.get(name) {
        Some(engine) => Ok((name.to_string(), engine)),
        None => Err(format!(
            "ERR index '{name}' is not attached (see LISTINDEXES)"
        )),
    }
}

/// The `ERR` line for an unauthenticated mutating verb, if any.
fn auth_err(conn: &ConnState) -> Option<String> {
    if conn.authed {
        None
    } else {
        Some("ERR authentication required (AUTH <token>)".to_string())
    }
}

/// Length-then-bytes comparison that always scans the full candidate, so
/// the timing of a failed `AUTH` does not leak how much of the token
/// matched.
fn token_matches(expected: &str, offered: &str) -> bool {
    let expected = expected.as_bytes();
    let offered = offered.as_bytes();
    if expected.is_empty() {
        // An empty configured token matches nothing — and must not be
        // indexed by the scan below. (The CLI rejects an empty
        // --auth-token outright; this keeps a programmatic Some("")
        // locked rather than panicking the handler.)
        return false;
    }
    let mut diff = expected.len() ^ offered.len();
    for (i, &b) in offered.iter().enumerate() {
        diff |= usize::from(b ^ expected[i % expected.len()]);
    }
    diff == 0
}

fn answer_auth<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &mut ConnState,
) -> String {
    let Some(token) = fields.next() else {
        return "ERR AUTH needs a token".to_string();
    };
    if fields.next().is_some() {
        return "ERR AUTH takes exactly one (whitespace-free) token".to_string();
    }
    match shared.config.auth_token.as_deref() {
        None => "OK authentication not required".to_string(),
        Some(expected) if token_matches(expected, token) => {
            conn.authed = true;
            "OK authenticated".to_string()
        }
        Some(_) => {
            // Throttle online brute force: one failed guess costs this
            // connection (and only this connection) a beat.
            std::thread::sleep(Duration::from_millis(100));
            "ERR bad token".to_string()
        }
    }
}

fn answer_use<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &mut ConnState,
) -> String {
    let Some(name) = fields.next() else {
        return "ERR USE needs an index name".to_string();
    };
    if fields.next().is_some() {
        return "ERR USE takes exactly one index name".to_string();
    }
    match shared.router.get(name) {
        Some(engine) => {
            conn.select(Some(name.to_string()), Some(&engine));
            format!("OK using {name}")
        }
        None => format!("ERR unknown index '{name}' (see LISTINDEXES)"),
    }
}

fn answer_attach<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &mut ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (Some(name), Some(path), None) = (fields.next(), fields.next(), fields.next()) else {
        return "ERR ATTACH needs <name> <path> (both whitespace-free)".to_string();
    };
    // Fail the cheap checks before the expensive build. The final
    // Router::attach re-checks both (another connection may have raced an
    // attach of the same name), so TOCTOU costs a wasted build, never an
    // inconsistent router.
    if let Err(e) = Router::validate_name(name) {
        return format!("ERR {e}");
    }
    if shared.router.get(name).is_some() {
        return format!("ERR an index named '{name}' is already attached");
    }
    // A sharded manifest (detected by magic bytes, not extension)
    // restores every shard file it names and serves them as one
    // scatter-gather engine — the set a wire `SAVE` of a sharded index
    // wrote.
    if pm_lsh_persist::is_manifest_file(path) {
        let start = Instant::now();
        let engine = match pm_lsh_persist::load_sharded(path) {
            Ok(shards) => ShardedEngine::from_indexes(shards, shared.config.attach_engine_config),
            Err(e) => return format!("ERR reading {path}: {e}"),
        };
        let points = engine.len();
        let dim = engine.dim();
        return match shared.router.attach(name, engine) {
            Ok(()) => format!(
                "OK attached {name} points={points} dim={dim} secs={:.3}",
                start.elapsed().as_secs_f64()
            ),
            Err(e) => format!("ERR {e}"),
        };
    }
    // A `.pmlsh` snapshot (detected by magic bytes, not extension) skips
    // the build entirely: the index inside is already constructed, with
    // its own saved parameters, and serves as soon as it deserializes.
    if pm_lsh_persist::is_pmlsh_file(path) {
        let start = Instant::now();
        let index = match pm_lsh_persist::load(path) {
            Ok(index) => index,
            Err(e) => return format!("ERR reading {path}: {e}"),
        };
        let points = index.len();
        let dim = index.data().dim();
        let engine = Engine::new(index, shared.config.attach_engine_config);
        return match shared.router.attach(name, engine) {
            Ok(()) => format!(
                "OK attached {name} points={points} dim={dim} secs={:.3}",
                start.elapsed().as_secs_f64()
            ),
            Err(e) => format!("ERR {e}"),
        };
    }
    let data = match pm_lsh_data::read_auto(path, None) {
        Ok(data) => data,
        Err(e) => return format!("ERR reading {path}: {e}"),
    };
    if data.is_empty() {
        return "ERR cannot attach an empty dataset".to_string();
    }
    // A NaN/Inf component would panic deep inside the build, which runs
    // on this handler thread — the client would see a bare disconnect
    // instead of this ERR. Name the poisoned row so a multi-gigabyte
    // file is debuggable from the reply alone.
    if let Err(flat) = crate::validate_points(data.as_flat()) {
        return format!(
            "ERR dataset contains a non-finite (NaN/Inf) component at row {} component {}",
            flat / data.dim(),
            flat % data.dim()
        );
    }
    let start = Instant::now();
    let points = data.len();
    let dim = data.dim();
    let index = PmLsh::build_with_opts(
        Arc::new(data),
        shared.config.attach_params,
        BuildOptions::all_cores(),
    );
    let engine = Engine::new(index, shared.config.attach_engine_config);
    match shared.router.attach(name, engine) {
        Ok(()) => format!(
            "OK attached {name} points={points} dim={dim} secs={:.3}",
            start.elapsed().as_secs_f64()
        ),
        Err(e) => format!("ERR {e}"),
    }
}

fn answer_detach<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let Some(name) = fields.next() else {
        return "ERR DETACH needs an index name".to_string();
    };
    if fields.next().is_some() {
        return "ERR DETACH takes exactly one index name".to_string();
    }
    match shared.router.detach(name) {
        Ok(_engine) => format!("OK detached {name}"),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes `REINDEX <path>` against the connection's current index:
/// loads the server-side dataset file, rebuilds with that snapshot's
/// parameters on all cores, and swaps. Returns the one-line wire reply.
fn answer_reindex<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let Some(path) = fields.next() else {
        return "ERR REINDEX needs a dataset file path".to_string();
    };
    if fields.next().is_some() {
        return "ERR REINDEX takes exactly one (whitespace-free) path".to_string();
    }
    let data = match pm_lsh_data::read_auto(path, None) {
        Ok(data) => data,
        Err(e) => return format!("ERR reading {path}: {e}"),
    };
    // Keep the serving parameters; only the dataset changes. The build
    // runs on the reindex thread, so this connection blocks while every
    // other connection keeps being served.
    let params = engine.params();
    match engine.reindex(data, params, BuildOptions::all_cores()) {
        Ok(report) => format!(
            "OK index={name} epoch={} points={} secs={:.3}",
            report.epoch, report.points, report.build_secs
        ),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes `INSERT <v1> ... <vd>` against the connection's current
/// index: parses the vector with the same rules as `QUERY`, publishes the
/// mutated snapshot, and reports the assigned id with the new epoch.
fn answer_insert<'a>(
    fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (_name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let mut point = Vec::with_capacity(conn.dim.max(16));
    for field in fields {
        match field.parse::<f32>() {
            Ok(v) if v.is_finite() => point.push(v),
            _ => return format!("ERR bad vector component '{field}'"),
        }
    }
    if point.is_empty() {
        return "ERR INSERT needs <v1> ... <vd>".to_string();
    }
    match engine.insert(&point) {
        Ok(report) => format!(
            "OK id={} epoch={} points={}",
            report.id, report.epoch, report.points
        ),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes `DELETE <id>` against the connection's current index.
fn answer_delete<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (_name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let id = match fields.next().map(str::parse::<u32>) {
        Some(Ok(id)) => id,
        _ => return "ERR DELETE needs a point id".to_string(),
    };
    if fields.next().is_some() {
        return "ERR DELETE takes exactly one point id".to_string();
    }
    match engine.delete(id) {
        Ok(report) => format!(
            "OK deleted {} epoch={} points={}",
            report.id, report.epoch, report.points
        ),
        Err(e) => format!("ERR {e}"),
    }
}

/// Executes `SAVE <path>` against the connection's current index: pins
/// the served snapshot and writes it to a server-side `.pmlsh` file
/// (atomic tmp-file + rename). Serialization runs on this handler thread
/// with no engine locks held, so every other connection keeps being
/// served; the saved snapshot excludes mutations that land mid-save.
/// Auth-gated: it writes files on the server's filesystem.
fn answer_save<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    if let Some(err) = auth_err(conn) {
        return err;
    }
    let (name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let Some(path) = fields.next() else {
        return "ERR SAVE needs a destination file path".to_string();
    };
    if fields.next().is_some() {
        return "ERR SAVE takes exactly one (whitespace-free) path".to_string();
    }
    let start = Instant::now();
    match engine.save(path) {
        Ok(report) => format!(
            "OK saved {name} points={} bytes={} secs={:.3}",
            report.points,
            report.bytes,
            start.elapsed().as_secs_f64()
        ),
        Err(e) => format!("ERR saving {path}: {e}"),
    }
}

fn answer_query<'a>(
    mut fields: impl Iterator<Item = &'a str>,
    shared: &Shared,
    conn: &ConnState,
) -> String {
    let (_name, engine) = match current_engine(shared, conn) {
        Ok(pair) => pair,
        Err(err) => return err,
    };
    let k: usize = match fields.next().map(str::parse) {
        Some(Ok(k)) if k >= 1 => k,
        _ => return "ERR QUERY needs a positive integer k".to_string(),
    };
    // Sized off the connection's cached dimensionality so a well-formed
    // high-d query never reallocates mid-parse.
    let mut query = Vec::with_capacity(conn.dim.max(16));
    for field in fields {
        match field.parse::<f32>() {
            Ok(v) if v.is_finite() => query.push(v),
            _ => return format!("ERR bad vector component '{field}'"),
        }
    }
    let result = match engine.try_query(&query, k) {
        Ok(result) => result,
        Err(QueryError::DimensionMismatch { expected, got }) => {
            return format!("ERR query has {got} components, index dimensionality is {expected}")
        }
        // Parsing already rejected k = 0 and non-finite components; a
        // worker-pool panic is the one error a well-formed line can hit.
        Err(QueryError::ZeroK) => return "ERR QUERY needs a positive integer k".to_string(),
        Err(QueryError::NonFiniteComponent) => {
            return "ERR query contains a non-finite component".to_string()
        }
        Err(QueryError::Internal) => return "ERR internal error".to_string(),
    };
    let mut out = String::with_capacity(16 * result.neighbors.len() + 3);
    out.push_str("OK ");
    for (i, n) in result.neighbors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", n.id, n.dist));
    }
    out
}

/// Parses one `OK` response line back into `(id, dist)` pairs — the client
/// half of the protocol, used by `pmlsh` tooling and the loopback tests.
pub fn parse_ok_response(line: &str) -> Result<Vec<(u32, f32)>, String> {
    let rest = line
        .strip_prefix("OK")
        .ok_or_else(|| format!("expected 'OK ...', got '{line}'"))?
        .trim();
    if rest.is_empty() {
        return Ok(Vec::new());
    }
    rest.split(',')
        .map(|pair| {
            let (id, dist) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed neighbor '{pair}'"))?;
            Ok((
                id.parse().map_err(|_| format!("bad id '{id}'"))?,
                dist.parse().map_err(|_| format!("bad distance '{dist}'"))?,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::Dataset;
    use pm_lsh_stats::Rng;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parse_ok_roundtrip() {
        let parsed = parse_ok_response("OK 3:0.5,17:1.25,9:2").unwrap();
        assert_eq!(parsed, vec![(3, 0.5), (17, 1.25), (9, 2.0)]);
        assert!(parse_ok_response("ERR nope").is_err());
        assert!(parse_ok_response("OK").unwrap().is_empty());
        assert!(parse_ok_response("OK 1:x").is_err());
    }

    #[test]
    fn backoff_grows_and_caps() {
        assert_eq!(accept_backoff(1), Duration::from_micros(500));
        assert_eq!(accept_backoff(2), Duration::from_millis(1));
        assert_eq!(accept_backoff(3), Duration::from_millis(2));
        let capped = accept_backoff(30);
        assert_eq!(capped, MAX_ACCEPT_BACKOFF);
        // Monotone non-decreasing all the way up.
        for n in 1..32 {
            assert!(accept_backoff(n) <= accept_backoff(n + 1));
        }
    }

    #[test]
    fn token_matching() {
        assert!(token_matches("sekrit", "sekrit"));
        assert!(!token_matches("sekrit", "sekri"));
        assert!(!token_matches("sekrit", "sekrit2"));
        assert!(!token_matches("sekrit", ""));
        // An empty configured token matches nothing — and a non-empty
        // guess against it must not panic the handler (regression: the
        // scan used to index expected[0] of an empty slice).
        assert!(!token_matches("", ""));
        assert!(!token_matches("", "x"));
        assert!(!token_matches("", "anything-at-all"));
    }

    fn empty_shared() -> Arc<Shared> {
        Arc::new(Shared {
            router: Router::new(),
            config: ServerConfig::default(),
            stop: AtomicBool::new(false),
            registry: ConnRegistry::new(),
        })
    }

    /// An acceptor that fails every call — the shape of persistent fd
    /// exhaustion (`EMFILE`).
    struct ErroringAcceptor {
        attempts: AtomicUsize,
    }

    impl Acceptor for ErroringAcceptor {
        fn accept(&self) -> std::io::Result<TcpStream> {
            self.attempts.fetch_add(1, Ordering::SeqCst);
            Err(std::io::Error::other("too many open files"))
        }
    }

    /// Regression for the accept-error busy loop: under a persistently
    /// failing accept(), the loop must back off rather than spin. The old
    /// `let Ok(stream) else { continue }` retried millions of times in
    /// this window.
    #[test]
    fn persistent_accept_errors_do_not_busy_loop() {
        let shared = empty_shared();
        let acceptor = ErroringAcceptor {
            attempts: AtomicUsize::new(0),
        };
        std::thread::scope(|scope| {
            let loop_shared = Arc::clone(&shared);
            let acceptor = &acceptor;
            let runner = scope.spawn(move || accept_loop(acceptor, &loop_shared));
            std::thread::sleep(Duration::from_millis(300));
            shared.stop.store(true, Ordering::SeqCst);
            runner.join().expect("accept loop exits on stop");
        });
        let attempts = acceptor.attempts.load(Ordering::SeqCst);
        assert!(attempts >= 2, "loop never retried ({attempts} attempts)");
        // 300 ms of backed-off retries is ~15 attempts; a busy loop would
        // be millions. Generous headroom for slow CI.
        assert!(
            attempts < 200,
            "accept loop busy-spun: {attempts} attempts in 300 ms"
        );
    }

    /// An acceptor yielding one pre-connected stream whose handover flips
    /// the stop flag — the exact interleaving of a connection accepted
    /// between `stop.store(true)` and the wake poke.
    struct RaceAcceptor {
        stream: Mutex<Option<TcpStream>>,
        shared: Arc<Shared>,
    }

    impl Acceptor for RaceAcceptor {
        fn accept(&self) -> std::io::Result<TcpStream> {
            match self.stream.lock().unwrap().take() {
                Some(stream) => {
                    // The accept returned; only NOW does shutdown land.
                    self.shared.stop.store(true, Ordering::SeqCst);
                    Ok(stream)
                }
                None => Err(std::io::Error::other("exhausted")),
            }
        }
    }

    /// Regression for the silent shutdown race: a connection accepted just
    /// as the stop flag lands must be answered `ERR server shutting down`,
    /// not abandoned without a byte.
    #[test]
    fn connection_accepted_during_shutdown_gets_an_err_line() {
        use std::io::Read;
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let shared = empty_shared();
        let acceptor = RaceAcceptor {
            stream: Mutex::new(Some(server_side)),
            shared: Arc::clone(&shared),
        };
        accept_loop(&acceptor, &shared);

        let mut reply = String::new();
        let mut reader = BufReader::new(client);
        reader.read_line(&mut reply).unwrap();
        assert_eq!(reply.trim_end(), "ERR server shutting down");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "connection must close after the ERR line");
    }

    /// A worker-pool panic must surface as `ERR internal error` on the
    /// wire — the connection survives and keeps answering — instead of
    /// the raw disconnect clients used to see.
    #[test]
    fn worker_panic_is_an_err_reply_not_a_disconnect() {
        let mut rng = Rng::new(41);
        let mut ds = Dataset::with_capacity(8, 120);
        let mut buf = [0.0f32; 8];
        for _ in 0..120 {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        let engine = Engine::new(
            PmLsh::build(ds, PmLshParams::default()),
            EngineConfig {
                threads: 1,
                ..Default::default()
            },
        );
        let handle = serve(engine, ("127.0.0.1", 0)).expect("bind port 0");
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut roundtrip = |line: &str| -> String {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response.trim_end().to_string()
        };
        let query = "QUERY 3 0.1 0.2 0.3 0.4 0.5 0.6 0.7 0.8";
        // 8e30 parses to exactly pool::CRASH_TEST_SENTINEL, the
        // test-only fault injection that panics the drawing worker.
        let crashing = "QUERY 3 8e30 0.2 0.3 0.4 0.5 0.6 0.7 0.8";

        assert_eq!(roundtrip(crashing), "ERR internal error");

        // The worker caught the panic; the connection AND the pool are
        // still serviceable.
        assert_eq!(roundtrip("PING"), "PONG");
        assert!(roundtrip(query).starts_with("OK "));
        handle.shutdown();
    }
}
