//! Cross-checks of the PM-tree against brute force, plus structural
//! property tests.

use pm_lsh_metric::{euclidean, Dataset, PointId};
use pm_lsh_pmtree::{PmTree, PmTreeConfig};
use pm_lsh_stats::Rng;
use proptest::prelude::*;

fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut ds = Dataset::with_capacity(dim, n);
    let mut buf = vec![0.0f32; dim];
    for _ in 0..n {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    ds
}

fn brute_range(ds: &Dataset, q: &[f32], r: f32) -> Vec<(PointId, f32)> {
    let mut out: Vec<(PointId, f32)> = ds
        .iter()
        .enumerate()
        .map(|(i, p)| (i as PointId, euclidean(q, p)))
        .filter(|&(_, d)| d <= r)
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

#[test]
fn range_query_matches_brute_force() {
    let ds = random_dataset(800, 15, 1);
    let mut rng = Rng::new(2);
    let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
    tree.verify_invariants().unwrap();

    let mut qbuf = vec![0.0f32; 15];
    for trial in 0..20 {
        rng.fill_normal(&mut qbuf);
        let r = 2.0 + (trial as f32) * 0.3;
        let got = tree.range(&qbuf, r);
        let want = brute_range(&ds, &qbuf, r);
        let got_ids: std::collections::BTreeSet<u32> = got.iter().map(|x| x.0).collect();
        let want_ids: std::collections::BTreeSet<u32> = want.iter().map(|x| x.0).collect();
        assert_eq!(got_ids, want_ids, "r={r}");
        // distances must be non-decreasing
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }
}

#[test]
fn knn_matches_brute_force() {
    let ds = random_dataset(600, 10, 3);
    let mut rng = Rng::new(4);
    let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);

    let mut qbuf = vec![0.0f32; 10];
    for _ in 0..15 {
        rng.fill_normal(&mut qbuf);
        let got = tree.knn(&qbuf, 10);
        assert_eq!(got.len(), 10);
        let mut all: Vec<(u32, f32)> = ds
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, euclidean(&qbuf, p)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let want_dists: Vec<f32> = all[..10].iter().map(|x| x.1).collect();
        let got_dists: Vec<f32> = got.iter().map(|x| x.1).collect();
        assert_eq!(got_dists, want_dists);
    }
}

#[test]
fn plain_mtree_without_pivots_also_correct() {
    let ds = random_dataset(500, 8, 5);
    let mut rng = Rng::new(6);
    let cfg = PmTreeConfig {
        num_pivots: 0,
        ..Default::default()
    };
    let tree = PmTree::build(ds.view(), cfg, &mut rng);
    tree.verify_invariants().unwrap();
    let mut qbuf = vec![0.0f32; 8];
    rng.fill_normal(&mut qbuf);
    let got = tree.range(&qbuf, 3.0);
    let want = brute_range(&ds, &qbuf, 3.0);
    assert_eq!(got.len(), want.len());
}

#[test]
fn radius_enlarging_cursor_never_repeats_or_misses() {
    // Algorithm 2's access pattern: pull from one cursor under radii
    // r, cr, c²r, ... and verify the union is exactly the brute-force
    // range result for the final radius, with no duplicates.
    let ds = random_dataset(700, 12, 7);
    let mut rng = Rng::new(8);
    let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);

    let mut q = vec![0.0f32; 12];
    rng.fill_normal(&mut q);
    let mut cursor = tree.cursor(&q);
    let mut seen = Vec::new();
    let mut radius = 1.0f32;
    let c = 1.5f32;
    for _ in 0..6 {
        while let Some(hit) = cursor.next_within(radius) {
            seen.push(hit);
        }
        radius *= c;
    }
    let final_radius = radius / c;
    let want = brute_range(&ds, &q, final_radius);
    assert_eq!(seen.len(), want.len(), "missed or duplicated points");
    let ids: std::collections::BTreeSet<u32> = seen.iter().map(|x| x.0).collect();
    assert_eq!(ids.len(), seen.len(), "duplicate yields");
    for w in seen.windows(2) {
        assert!(w[0].1 <= w[1].1, "cursor order violated");
    }
}

#[test]
fn cursor_visits_fewer_points_than_scan() {
    // With a selective radius, the number of exact distance computations
    // must be far below n (that is the whole point of the index).
    let ds = random_dataset(4000, 15, 9);
    let mut rng = Rng::new(10);
    let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
    let q = ds.point(0).to_vec();
    let mut cursor = tree.cursor(&q);
    let mut count = 0;
    while cursor.next_within(1.0).is_some() {
        count += 1;
    }
    let comps = cursor.distance_computations();
    assert!(comps < 4000, "distance computations {comps} not sublinear");
    assert!(count >= 1, "the query point itself must be found");
}

#[test]
fn duplicate_points_are_all_returned() {
    let mut ds = Dataset::with_capacity(4, 0);
    for _ in 0..40 {
        ds.push(&[1.0, 2.0, 3.0, 4.0]);
    }
    for i in 0..40 {
        ds.push(&[10.0 + i as f32, 0.0, 0.0, 0.0]);
    }
    let mut rng = Rng::new(11);
    let cfg = PmTreeConfig {
        capacity: 4,
        num_pivots: 2,
        pivot_sample: 64,
    };
    let tree = PmTree::build(ds.view(), cfg, &mut rng);
    tree.verify_invariants().unwrap();
    let hits = tree.range(&[1.0, 2.0, 3.0, 4.0], 0.0);
    assert_eq!(hits.len(), 40, "all duplicates must be retrievable");
}

#[test]
fn small_capacity_deep_tree_still_correct() {
    let ds = random_dataset(300, 6, 12);
    let mut rng = Rng::new(13);
    let cfg = PmTreeConfig {
        capacity: 3,
        num_pivots: 3,
        pivot_sample: 128,
    };
    let tree = PmTree::build(ds.view(), cfg, &mut rng);
    tree.verify_invariants().unwrap();
    assert!(
        tree.height() >= 3,
        "capacity 3 with 300 points must be deep"
    );
    let q = vec![0.0f32; 6];
    let got = tree.range(&q, 2.0);
    let want = brute_range(&ds, &q, 2.0);
    assert_eq!(got.len(), want.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_hold_for_arbitrary_data(
        seed in 0u64..1000,
        n in 10usize..300,
        capacity in 3usize..10,
        pivots in 0usize..4,
    ) {
        let ds = random_dataset(n, 5, seed);
        let mut rng = Rng::new(seed ^ 0xabcd);
        let cfg = PmTreeConfig { capacity, num_pivots: pivots, pivot_sample: 64 };
        let tree = PmTree::build(ds.view(), cfg, &mut rng);
        prop_assert_eq!(tree.len(), n);
        tree.verify_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn range_always_matches_brute_force(
        seed in 0u64..1000,
        n in 10usize..250,
        radius in 0.5f32..4.0,
    ) {
        let ds = random_dataset(n, 4, seed);
        let mut rng = Rng::new(seed ^ 0x1234);
        let cfg = PmTreeConfig { capacity: 5, num_pivots: 2, pivot_sample: 64 };
        let tree = PmTree::build(ds.view(), cfg, &mut rng);
        let mut q = vec![0.0f32; 4];
        rng.fill_normal(&mut q);
        let got = tree.range(&q, radius);
        let want = brute_range(&ds, &q, radius);
        prop_assert_eq!(got.len(), want.len());
        let got_ids: std::collections::BTreeSet<u32> = got.iter().map(|x| x.0).collect();
        let want_ids: std::collections::BTreeSet<u32> = want.iter().map(|x| x.0).collect();
        prop_assert_eq!(got_ids, want_ids);
    }
}
