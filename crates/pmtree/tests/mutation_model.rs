//! Model-based mutation tests: a PM-tree under random interleaved
//! insert/delete/query sequences must agree with a naive linear-scan
//! model *exactly* — same k-NN ids, same distances — and satisfy every
//! structural invariant after every single mutation.
//!
//! The PM-tree is an exact index over the projected space (the LSH
//! approximation lives a layer up, in `pm-lsh-core`), so "agrees with a
//! linear scan" is a hard equality here, not a recall target. Distances
//! are compared bit-for-bit: both sides call the same `euclidean` kernel
//! on the same `f32` data.

use pm_lsh_metric::{euclidean, Dataset, PointId};
use pm_lsh_pmtree::{PmTree, PmTreeConfig};
use pm_lsh_stats::Rng;
use proptest::prelude::*;

/// The oracle: every live `(id, vector)` pair, scanned linearly.
fn linear_knn(model: &[(PointId, Vec<f32>)], q: &[f32], k: usize) -> Vec<(PointId, f32)> {
    let mut all: Vec<(PointId, f32)> = model.iter().map(|(id, v)| (*id, euclidean(q, v))).collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Ties inside a distance level may surface in either order from the
/// cursor's heap; normalizing both sides to (dist, id) order makes the
/// comparison exact without depending on heap insertion sequence.
fn normalized(mut hits: Vec<(PointId, f32)>) -> Vec<(PointId, f32)> {
    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    hits
}

fn assert_tree_matches_model(
    tree: &PmTree,
    model: &[(PointId, Vec<f32>)],
    q: &[f32],
    k: usize,
    context: &str,
) {
    let got = normalized(tree.knn(q, k));
    let want = linear_knn(model, q, k);
    assert_eq!(
        got, want,
        "k-NN diverged from the linear-scan model {context}"
    );
}

/// One full random episode: build over an initial batch, then interleave
/// inserts and deletes, auditing invariants and k-NN parity after every
/// mutation. Returns how many mutations ran (so callers can assert the
/// episode was long enough to mean something).
fn run_episode(dim: usize, seed: u64, ops: usize) -> usize {
    let mut rng = Rng::new(seed);
    let n0 = 50;
    let mut ds = Dataset::with_capacity(dim, n0);
    let mut buf = vec![0.0f32; dim];
    for _ in 0..n0 {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    // Small nodes and few pivots force frequent splits, prunes and root
    // collapses — the interesting structural churn.
    let cfg = PmTreeConfig {
        capacity: 6,
        num_pivots: 3,
        pivot_sample: 64,
    };
    let mut tree = PmTree::build(ds.view(), cfg, &mut rng);
    let mut model: Vec<(PointId, Vec<f32>)> = ds
        .iter()
        .enumerate()
        .map(|(i, p)| (i as PointId, p.to_vec()))
        .collect();
    let mut next_id = n0 as PointId;
    tree.check_invariants();

    let mut mutations = 0;
    for op in 0..ops {
        if model.is_empty() || rng.below(10) < 6 {
            rng.fill_normal(&mut buf);
            tree.insert(&buf, next_id);
            model.push((next_id, buf.clone()));
            next_id += 1;
        } else {
            let (victim, _) = model.swap_remove(rng.below(model.len()));
            assert!(tree.delete(victim), "live id {victim} not deletable");
            assert!(
                !tree.delete(victim),
                "id {victim} deletable twice (op {op})"
            );
            assert!(!tree.contains_external(victim));
        }
        mutations += 1;
        tree.check_invariants();
        assert_eq!(tree.len(), model.len(), "live count drifted at op {op}");

        rng.fill_normal(&mut buf);
        let k = 1 + op % 7;
        assert_tree_matches_model(&tree, &model, &buf, k, &format!("at op {op}"));
    }
    mutations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // Two dimensionalities x 4 seeded cases x 220 ops each, with
    // invariants and model parity asserted after every single mutation.
    #[test]
    fn interleaved_mutations_match_linear_scan_low_dim(seed in 0u64..1 << 32) {
        prop_assert!(run_episode(3, seed, 220) >= 220);
    }

    #[test]
    fn interleaved_mutations_match_linear_scan_paper_dim(seed in 0u64..1 << 32) {
        // m = 15 is the paper's projected dimensionality.
        prop_assert!(run_episode(15, seed, 220) >= 220);
    }
}

/// The batch write path a layer up applies a whole group of mutations
/// between audits. Model that here: one tree takes random mutation
/// groups of width 1..=16 with no checks in between, a twin applies the
/// identical ops one at a time with invariants checked after every op,
/// and each group boundary is a checkpoint — both trees must satisfy
/// the structural invariants and answer k-NN bit-identically to each
/// other and to the linear-scan model. Deferring the audit must not
/// defer correctness.
#[test]
fn grouped_mutations_agree_with_per_op_twin_at_checkpoints() {
    let dim = 6;
    let n0 = 50;
    let mut rng = Rng::new(0xBA7C);
    let mut ds = Dataset::with_capacity(dim, n0);
    let mut buf = vec![0.0f32; dim];
    for _ in 0..n0 {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    let cfg = PmTreeConfig {
        capacity: 6,
        num_pivots: 3,
        pivot_sample: 64,
    };
    // Identical seeds -> identical pivot choices -> identical trees.
    let mut grouped = PmTree::build(ds.view(), cfg, &mut Rng::new(0x5EED));
    let mut twin = PmTree::build(ds.view(), cfg, &mut Rng::new(0x5EED));
    let mut model: Vec<(PointId, Vec<f32>)> = ds
        .iter()
        .enumerate()
        .map(|(i, p)| (i as PointId, p.to_vec()))
        .collect();
    let mut next_id = n0 as PointId;

    for round in 0..30 {
        let width = 1 + rng.below(16);
        // Plan the group against the model so in-group dependencies
        // (delete an id the model says is gone) never arise — the engine
        // layer owns per-op failure semantics; the tree contract is that
        // every op here is valid.
        let mut inserts: Vec<(PointId, Vec<f32>)> = Vec::new();
        let mut deletes: Vec<PointId> = Vec::new();
        let mut ops: Vec<Option<(PointId, Vec<f32>)>> = Vec::with_capacity(width);
        for _ in 0..width {
            if model.is_empty() || rng.below(10) < 6 {
                rng.fill_normal(&mut buf);
                inserts.push((next_id, buf.clone()));
                ops.push(Some((next_id, buf.clone())));
                model.push((next_id, buf.clone()));
                next_id += 1;
            } else {
                let (victim, _) = model.swap_remove(rng.below(model.len()));
                deletes.push(victim);
                ops.push(None);
            }
        }

        // The grouped tree takes the whole width with no audits between.
        let (mut ins_it, mut del_it) = (inserts.iter(), deletes.iter());
        for op in &ops {
            match op {
                Some(_) => {
                    let (id, v) = ins_it.next().unwrap();
                    grouped.insert(v, *id);
                }
                None => {
                    let victim = del_it.next().unwrap();
                    assert!(grouped.delete(*victim), "grouped delete refused");
                }
            }
        }
        // The twin replays identically, audited after every single op.
        let (mut ins_it, mut del_it) = (inserts.iter(), deletes.iter());
        for op in &ops {
            match op {
                Some(_) => {
                    let (id, v) = ins_it.next().unwrap();
                    twin.insert(v, *id);
                }
                None => {
                    let victim = del_it.next().unwrap();
                    assert!(twin.delete(*victim), "twin delete refused");
                }
            }
            twin.check_invariants();
        }

        // Checkpoint: the deferred-audit tree has nothing to hide.
        grouped.check_invariants();
        assert_eq!(grouped.len(), model.len(), "round {round}: live count");
        assert_eq!(grouped.len(), twin.len());
        rng.fill_normal(&mut buf);
        let k = 1 + round % 7;
        assert_eq!(
            normalized(grouped.knn(&buf, k)),
            normalized(twin.knn(&buf, k)),
            "round {round}: grouped tree diverged from per-op twin"
        );
        assert_tree_matches_model(
            &grouped,
            &model,
            &buf,
            k,
            &format!("at group boundary {round}"),
        );
    }
}

#[test]
fn delete_unknown_and_already_deleted_ids_are_rejected() {
    let mut rng = Rng::new(7);
    let mut ds = Dataset::with_capacity(4, 30);
    let mut buf = [0.0f32; 4];
    for _ in 0..30 {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    let mut tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
    assert!(!tree.delete(999), "never-indexed id must not delete");
    assert!(tree.delete(12));
    assert!(!tree.delete(12), "double delete must report false");
    tree.check_invariants();
    assert_eq!(tree.len(), 29);
}

#[test]
fn drain_to_empty_then_regrow() {
    let mut rng = Rng::new(11);
    let dim = 5;
    let mut ds = Dataset::with_capacity(dim, 80);
    let mut buf = vec![0.0f32; dim];
    for _ in 0..80 {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    let cfg = PmTreeConfig {
        capacity: 4,
        num_pivots: 2,
        pivot_sample: 32,
    };
    let mut tree = PmTree::build(ds.view(), cfg, &mut rng);

    // Delete every point in a shuffled order; the tree must stay
    // consistent through every prune and end genuinely empty.
    let mut order: Vec<PointId> = (0..80).collect();
    rng.shuffle(&mut order);
    for (i, id) in order.iter().enumerate() {
        assert!(tree.delete(*id));
        tree.check_invariants();
        assert_eq!(tree.len(), 80 - 1 - i);
    }
    assert!(tree.is_empty());
    assert!(tree.knn(&vec![0.0; dim], 3).is_empty());

    // A drained tree accepts new points (reusing freed arena slots).
    let nodes_when_empty = tree.node_count();
    for id in 0..40u32 {
        rng.fill_normal(&mut buf);
        tree.insert(&buf, 1000 + id);
        tree.check_invariants();
    }
    assert_eq!(tree.len(), 40);
    assert!(
        tree.node_count() <= nodes_when_empty.max(1) + 40,
        "regrowth must reuse freed arena slots, not leak them"
    );
    let hits = tree.knn(&buf, 1);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].1, 0.0, "the just-inserted point is its own NN");
}

#[test]
fn deletions_preserve_radius_enlargement_semantics() {
    // After heavy churn the cursor's incremental range scan must still
    // yield every live point exactly once, in non-decreasing distance.
    let mut rng = Rng::new(23);
    let dim = 8;
    let mut ds = Dataset::with_capacity(dim, 200);
    let mut buf = vec![0.0f32; dim];
    for _ in 0..200 {
        rng.fill_normal(&mut buf);
        ds.push(&buf);
    }
    let mut tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
    for id in (0..200).step_by(3) {
        assert!(tree.delete(id));
    }
    tree.check_invariants();

    rng.fill_normal(&mut buf);
    let mut cursor = tree.cursor(&buf);
    let mut yielded = std::collections::HashSet::new();
    let mut last = 0.0f32;
    // Enlarge the radius in stages, as Algorithm 2 does.
    for radius in [0.5f32, 1.5, 4.0, f32::INFINITY] {
        while let Some((id, d)) = cursor.next_within(radius) {
            assert!(d >= last, "distance order violated after churn");
            last = d;
            assert!(yielded.insert(id), "id {id} yielded twice");
            assert!(tree.contains_external(id), "deleted id {id} yielded");
        }
    }
    assert_eq!(yielded.len(), tree.len(), "cursor missed live points");
}
