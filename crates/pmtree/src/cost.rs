//! Node-based cost model for the PM-tree (Eqs. 5–7, Section 4.2).
//!
//! The expected number of distance computations of a range query
//! `range(q, r_q)` is estimated from the dataset's distance distribution
//! `F(x)` (Eq. 4): a node behind routing entry `e` is accessed with
//! probability
//!
//! ```text
//! Pr[e] = F(e.r + r_q) · Π_i [ F(e.HR[i].max + r_q) − F(e.HR[i].min − r_q) ]
//! ```
//!
//! and each access costs one distance computation per entry of the node
//! (Eq. 7). The same model instantiated for R-trees lives in
//! `pm-lsh-rtree::cost`; together they regenerate Table 2.

use crate::tree::{Node, PmTree};
use pm_lsh_stats::Ecdf;

/// Eq. 6: access probability of the node behind routing entry `e`.
fn access_probability(f: &Ecdf, radius: f64, rings: &[crate::entry::Ring], rq: f64) -> f64 {
    let mut pr = f.cdf(radius + rq);
    for ring in rings {
        let hi = f.cdf(ring.max as f64 + rq);
        let lo = if (ring.min as f64 - rq) <= 0.0 {
            0.0
        } else {
            f.cdf(ring.min as f64 - rq)
        };
        pr *= (hi - lo).clamp(0.0, 1.0);
    }
    pr.clamp(0.0, 1.0)
}

/// Eq. 7: expected distance computations of `range(q, rq)` over the built
/// tree, under distance distribution `f`.
///
/// The root is always accessed; every other node contributes its entry count
/// weighted by its routing entry's access probability.
pub fn expected_distance_computations(tree: &PmTree, f: &Ecdf, rq: f64) -> f64 {
    let entries_of = |node: u32| -> f64 {
        match &tree.nodes[node as usize] {
            Node::Inner(es) => es.len() as f64,
            Node::Leaf(es) => es.len() as f64,
        }
    };

    let mut cc = entries_of(tree.root);
    let mut stack = vec![tree.root];
    while let Some(nid) = stack.pop() {
        if let Node::Inner(entries) = &tree.nodes[nid as usize] {
            for e in entries {
                let pr = access_probability(f, e.radius as f64, &e.rings, rq);
                cc += entries_of(e.child) * pr;
                stack.push(e.child);
            }
        }
    }
    cc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{PmTree, PmTreeConfig};
    use pm_lsh_metric::Dataset;
    use pm_lsh_stats::{distance_distribution, Rng};

    fn clustered_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(dim, n);
        let mut buf = vec![0.0f32; dim];
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..dim).map(|_| rng.normal_f32() * 20.0).collect())
            .collect();
        for i in 0..n {
            let c = &centers[i % centers.len()];
            for (b, &cv) in buf.iter_mut().zip(c) {
                *b = cv + rng.normal_f32();
            }
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn cost_grows_with_radius() {
        let ds = clustered_dataset(1500, 8, 42);
        let mut rng = Rng::new(7);
        let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
        let f = distance_distribution(ds.view(), 4000, &mut rng);
        let small = expected_distance_computations(&tree, &f, f.quantile(0.01));
        let large = expected_distance_computations(&tree, &f, f.quantile(0.5));
        assert!(small > 0.0);
        assert!(large > small, "small={small} large={large}");
    }

    #[test]
    fn cost_bounded_by_full_scan_cost() {
        // The model can never predict more distance computations than
        // accessing every node in the tree.
        let ds = clustered_dataset(1000, 8, 1);
        let mut rng = Rng::new(2);
        let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
        let f = distance_distribution(ds.view(), 4000, &mut rng);
        let total_entries: f64 = (0..tree.node_count())
            .map(|i| match &tree.nodes[i] {
                Node::Inner(es) => es.len() as f64,
                Node::Leaf(es) => es.len() as f64,
            })
            .sum();
        let cc = expected_distance_computations(&tree, &f, f.max());
        assert!(cc <= total_entries + 1e-6, "cc={cc} total={total_entries}");
        // and for a selective radius, pruning should beat the full scan
        let cc_small = expected_distance_computations(&tree, &f, f.quantile(0.02));
        assert!(
            cc_small < total_entries * 0.9,
            "cc_small={cc_small} total={total_entries}"
        );
    }

    #[test]
    fn pivots_reduce_expected_cost() {
        // Hyper-rings only ever tighten Pr[e], so the s = 5 tree should not
        // cost more than the s = 0 (plain M-tree) model on the same data.
        let ds = clustered_dataset(1200, 8, 3);
        let mut rng_a = Rng::new(4);
        let mut rng_b = Rng::new(4);
        let with_pivots = PmTree::build(
            ds.view(),
            PmTreeConfig {
                num_pivots: 5,
                ..Default::default()
            },
            &mut rng_a,
        );
        let plain = PmTree::build(
            ds.view(),
            PmTreeConfig {
                num_pivots: 0,
                ..Default::default()
            },
            &mut rng_b,
        );
        let mut rng = Rng::new(5);
        let f = distance_distribution(ds.view(), 4000, &mut rng);
        let rq = f.quantile(0.08);
        let cc_pm = expected_distance_computations(&with_pivots, &f, rq);
        let cc_m = expected_distance_computations(&plain, &f, rq);
        assert!(cc_pm <= cc_m * 1.05, "pm={cc_pm} m={cc_m}");
    }
}
