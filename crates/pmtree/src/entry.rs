//! PM-tree node entries (Fig. 4(b) of the paper).
//!
//! An inner entry mirrors the paper's `(e.r, e.ptr, e.RO, e.PD, e.HR)`
//! tuple: covering radius, child pointer, routing object, distance to the
//! parent routing object, and the hyper-ring intervals induced by the global
//! pivots. A leaf entry stores the point, its distance to the parent routing
//! object and its distances to the pivots.

use crate::NodeId;
use pm_lsh_metric::PointId;

/// Per-pivot hyper-ring interval `[min, max]` of distances from the pivot to
/// every point stored below an entry (the paper's `e.HR[i]`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ring {
    /// Smallest distance from the pivot to any point in the subtree.
    pub min: f32,
    /// Largest distance from the pivot to any point in the subtree.
    pub max: f32,
}

impl Ring {
    /// An empty ring, absorbing any update.
    pub const EMPTY: Ring = Ring {
        min: f32::INFINITY,
        max: f32::NEG_INFINITY,
    };

    /// Expands the ring to include a single distance.
    #[inline]
    pub fn include(&mut self, d: f32) {
        if d < self.min {
            self.min = d;
        }
        if d > self.max {
            self.max = d;
        }
    }

    /// Expands the ring to cover another ring.
    #[inline]
    pub fn merge(&mut self, other: Ring) {
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Lower bound on `d(q, x)` for any `x` in the subtree, given the
    /// distance `qp` from the query to this ring's pivot (triangle
    /// inequality both ways).
    #[inline]
    pub fn lower_bound(&self, qp: f32) -> f32 {
        (qp - self.max).max(self.min - qp).max(0.0)
    }

    /// `true` when a ball of radius `r` around a query at pivot distance
    /// `qp` intersects the ring (the two ring conditions of Eq. 5).
    #[inline]
    pub fn intersects(&self, qp: f32, r: f32) -> bool {
        qp - r <= self.max && qp + r >= self.min
    }
}

/// Routing entry of an inner node.
#[derive(Clone, Debug)]
pub struct InnerEntry {
    /// Routing object `e.RO`: a copy of the promoted point's coordinates.
    pub center: Box<[f32]>,
    /// Covering radius `e.r`: every point in the subtree is within this
    /// distance of `center`.
    pub radius: f32,
    /// Distance `e.PD` from `center` to the routing object of the parent
    /// entry (0 for entries of the root).
    pub parent_dist: f32,
    /// Child node `e.ptr`.
    pub child: NodeId,
    /// Hyper-ring intervals `e.HR`, one per global pivot (empty when s = 0,
    /// which degrades the structure to a plain M-tree).
    pub rings: Box<[Ring]>,
}

impl InnerEntry {
    /// Ring-based lower bound on the distance from the query to any point in
    /// the subtree; `qp_dists[i]` is the query's distance to pivot `i`.
    #[inline]
    pub fn ring_lower_bound(&self, qp_dists: &[f32]) -> f32 {
        let mut lb = 0.0f32;
        for (ring, &qp) in self.rings.iter().zip(qp_dists) {
            let b = ring.lower_bound(qp);
            if b > lb {
                lb = b;
            }
        }
        lb
    }

    /// Eq. 5: whether a range ball `B(q, r)` can intersect this entry's
    /// region, given the exact center distance `d(q, center)`.
    #[inline]
    pub fn may_intersect(&self, dq_center: f32, r: f32, qp_dists: &[f32]) -> bool {
        if dq_center > self.radius + r {
            return false;
        }
        self.rings
            .iter()
            .zip(qp_dists)
            .all(|(ring, &qp)| ring.intersects(qp, r))
    }
}

/// Entry of a leaf node: one indexed point.
#[derive(Clone, Debug)]
pub struct LeafEntry {
    /// Row of the point inside the tree's internal point store.
    pub internal: u32,
    /// Caller-visible identifier of the point.
    pub external: PointId,
    /// Distance `o.PD` to the routing object of the parent entry.
    pub parent_dist: f32,
    /// Distances from the point to each global pivot.
    pub pivot_dists: Box<[f32]>,
}

impl LeafEntry {
    /// Pivot-based lower bound `max_i |d(q, p_i) − d(o, p_i)|` on the
    /// distance from the query to this point.
    #[inline]
    pub fn pivot_lower_bound(&self, qp_dists: &[f32]) -> f32 {
        let mut lb = 0.0f32;
        for (&pd, &qp) in self.pivot_dists.iter().zip(qp_dists) {
            let b = (qp - pd).abs();
            if b > lb {
                lb = b;
            }
        }
        lb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_include_and_merge() {
        let mut r = Ring::EMPTY;
        r.include(2.0);
        r.include(5.0);
        assert_eq!(r, Ring { min: 2.0, max: 5.0 });
        let mut other = Ring { min: 1.0, max: 3.0 };
        other.merge(r);
        assert_eq!(other, Ring { min: 1.0, max: 5.0 });
    }

    #[test]
    fn ring_lower_bound_cases() {
        let ring = Ring { min: 2.0, max: 5.0 };
        // query's pivot distance inside the ring: bound is 0
        assert_eq!(ring.lower_bound(3.0), 0.0);
        // query closer to pivot than the ring: min - qp
        assert_eq!(ring.lower_bound(0.5), 1.5);
        // query farther than the ring: qp - max
        assert_eq!(ring.lower_bound(7.0), 2.0);
    }

    #[test]
    fn ring_intersection_matches_bound() {
        let ring = Ring { min: 2.0, max: 5.0 };
        for qp in [0.0f32, 1.0, 2.5, 4.9, 6.0, 9.0] {
            for r in [0.1f32, 1.0, 3.0] {
                assert_eq!(
                    ring.intersects(qp, r),
                    ring.lower_bound(qp) <= r,
                    "qp={qp} r={r}"
                );
            }
        }
    }

    #[test]
    fn leaf_pivot_bound_is_symmetric_difference() {
        let e = LeafEntry {
            internal: 0,
            external: 0,
            parent_dist: 0.0,
            pivot_dists: vec![3.0, 8.0].into_boxed_slice(),
        };
        assert_eq!(e.pivot_lower_bound(&[5.0, 8.5]), 2.0);
        assert_eq!(e.pivot_lower_bound(&[3.0, 8.0]), 0.0);
    }
}
