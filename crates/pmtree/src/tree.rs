//! PM-tree construction: M-tree insertion with mM_RAD splits plus global
//! pivot hyper-rings (Skopal et al., DASFAA'05; Section 4.1 of the paper).

use crate::entry::{InnerEntry, LeafEntry, Ring};
use crate::pivots::select_pivots;
use crate::NodeId;
use pm_lsh_metric::{euclidean, Dataset, MatrixView, PointId};
use pm_lsh_stats::Rng;
use std::collections::HashMap;

/// A PM-tree node: either routing entries or point entries.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    /// Inner node holding routing entries.
    Inner(Vec<InnerEntry>),
    /// Leaf node holding point entries.
    Leaf(Vec<LeafEntry>),
}

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct PmTreeConfig {
    /// Maximum number of entries per node (the paper's experiments use 16).
    pub capacity: usize,
    /// Number of global pivots `s` (the paper settles on 5; 0 degrades the
    /// structure to a plain M-tree).
    pub num_pivots: usize,
    /// Sample size used for pivot selection.
    pub pivot_sample: usize,
}

impl Default for PmTreeConfig {
    fn default() -> Self {
        Self {
            capacity: 16,
            num_pivots: 5,
            pivot_sample: 1024,
        }
    }
}

/// One node of a [`PmTreeParts`] snapshot: the public mirror of the
/// private arena node, with children referring to *compacted* node ids.
#[derive(Clone, Debug)]
pub enum RawNode {
    /// Inner node holding routing entries.
    Inner(Vec<InnerEntry>),
    /// Leaf node holding point entries.
    Leaf(Vec<LeafEntry>),
}

/// The complete state of a [`PmTree`], exported with
/// [`PmTree::to_parts`] and re-imported with [`PmTree::from_parts`] —
/// the serialization boundary index snapshots go through.
///
/// The node arena is *free-list-compacted*: freed slots are dropped and
/// surviving nodes renumbered densely, preserving their relative order.
/// Node ids never influence traversal order or query answers (the
/// cursor orders by distance key and push sequence), so a round-tripped
/// tree answers every query bit-identically. `ext_index` and
/// `free_nodes` are not part of the export — the id map is rebuilt by
/// inverting `externals`, and a compacted arena has no free slots.
#[derive(Clone, Debug)]
pub struct PmTreeParts {
    /// Dimensionality of the indexed space.
    pub dim: usize,
    /// Construction parameters.
    pub cfg: PmTreeConfig,
    /// The `s` global pivots.
    pub pivots: Vec<Box<[f32]>>,
    /// Compacted node arena.
    pub nodes: Vec<RawNode>,
    /// Root node id (into the compacted arena).
    pub root: NodeId,
    /// Dense internal point store (projected points).
    pub points: Dataset,
    /// Internal row -> external id.
    pub externals: Vec<PointId>,
    /// Internal row -> holding leaf (compacted ids).
    pub leaf_of: Vec<NodeId>,
    /// Distance computations spent on construction so far.
    pub build_dist_computations: u64,
}

/// A PM-tree over points in `R^dim` under the Euclidean distance.
///
/// The tree owns a copy of every inserted point (60 bytes per point in the
/// paper's m = 15 projected space), so callers may drop their own projected
/// data after building. Point payloads are addressed by *internal* row
/// while queries report the caller-supplied *external* [`PointId`].
#[derive(Clone, Debug)]
pub struct PmTree {
    pub(crate) dim: usize,
    pub(crate) cfg: PmTreeConfig,
    pub(crate) pivots: Vec<Box<[f32]>>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    pub(crate) points: Dataset,
    pub(crate) externals: Vec<PointId>,
    /// External id -> internal row, the lookup [`PmTree::delete`] starts
    /// from (and what makes duplicate external ids detectable at insert).
    pub(crate) ext_index: HashMap<PointId, u32>,
    /// Internal row -> the leaf node currently holding its entry.
    pub(crate) leaf_of: Vec<NodeId>,
    /// Arena slots released by deletions, reused by the next allocation.
    pub(crate) free_nodes: Vec<NodeId>,
    build_dist_computations: u64,
}

impl PmTree {
    /// Creates an empty tree with pre-selected pivots.
    pub fn new(dim: usize, cfg: PmTreeConfig, pivots: Vec<Box<[f32]>>) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(cfg.capacity >= 2, "node capacity must be at least 2");
        assert_eq!(
            pivots.len(),
            cfg.num_pivots,
            "pivot count must match config"
        );
        for p in &pivots {
            assert_eq!(p.len(), dim, "pivot has wrong dimensionality");
        }
        Self {
            dim,
            cfg,
            pivots,
            nodes: vec![Node::Leaf(Vec::new())],
            root: 0,
            points: Dataset::with_capacity(dim, 0),
            externals: Vec::new(),
            ext_index: HashMap::new(),
            leaf_of: Vec::new(),
            free_nodes: Vec::new(),
            build_dist_computations: 0,
        }
    }

    /// Builds a tree over every row of `view` (external id = row index),
    /// selecting pivots from a sample first.
    pub fn build(view: MatrixView<'_>, cfg: PmTreeConfig, rng: &mut Rng) -> Self {
        let pivots = select_pivots(view, cfg.num_pivots, cfg.pivot_sample, rng);
        let mut tree = Self::new(view.dim(), cfg, pivots);
        for (i, p) in view.iter().enumerate() {
            tree.insert(p, i as PointId);
        }
        tree
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.externals.len()
    }

    /// `true` when no point is indexed.
    pub fn is_empty(&self) -> bool {
        self.externals.is_empty()
    }

    /// Dimensionality of the indexed space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The global pivots.
    pub fn pivots(&self) -> &[Box<[f32]>] {
        &self.pivots
    }

    /// Number of allocated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::Leaf(_) => return h,
                Node::Inner(entries) => {
                    node = entries[0].child;
                    h += 1;
                }
            }
        }
    }

    /// Distance computations spent on inserts so far (preprocessing cost).
    pub fn build_distance_computations(&self) -> u64 {
        self.build_dist_computations
    }

    /// The external ids of every indexed point, in internal-row order
    /// (the live set: deletions remove ids from this slice).
    pub fn external_ids(&self) -> &[PointId] {
        &self.externals
    }

    /// `true` when a point with this external id is indexed.
    pub fn contains_external(&self, external: PointId) -> bool {
        self.ext_index.contains_key(&external)
    }

    /// Inserts one point with a caller-chosen external id.
    ///
    /// # Panics
    /// Panics if `vector.len() != self.dim()`.
    pub fn insert(&mut self, vector: &[f32], external: PointId) {
        // Check before the pivot distances so a bad point fails with this
        // message (not inside the distance kernel) and without counting
        // distance computations it never really did.
        assert_eq!(vector.len(), self.dim, "point has wrong dimensionality");
        let pd: Box<[f32]> = self
            .pivots
            .iter()
            .map(|p| euclidean(vector, p))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        self.build_dist_computations += self.pivots.len() as u64;
        self.insert_with_pivot_dists(vector, external, pd);
    }

    /// Inserts one point whose pivot distances are already known (the bulk
    /// loader computes them during region assignment and must not pay for —
    /// or count — them twice).
    pub(crate) fn insert_with_pivot_dists(
        &mut self,
        vector: &[f32],
        external: PointId,
        pd: Box<[f32]>,
    ) {
        assert_eq!(vector.len(), self.dim, "point has wrong dimensionality");
        debug_assert_eq!(pd.len(), self.pivots.len());
        let internal = self.externals.len() as u32;
        assert!(
            !self.ext_index.contains_key(&external),
            "external id {external} is already indexed"
        );
        self.points.push(vector);
        self.externals.push(external);
        self.ext_index.insert(external, internal);
        // Placeholder; insert_rec records the leaf that receives the entry.
        self.leaf_of.push(self.root);

        if let Some((e1, e2)) = self.insert_rec(self.root, vector, internal, &pd, 0.0, None) {
            let new_root = self.alloc(Node::Inner(vec![e1, e2]));
            self.root = new_root;
        }
    }

    /// Adds `count` build-time distance computations to the preprocessing
    /// counter (used by the bulk loader, whose assignment phase computes
    /// pivot distances outside [`PmTree::insert`]).
    pub(crate) fn add_build_dist_computations(&mut self, count: u64) {
        self.build_dist_computations += count;
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        match self.free_nodes.pop() {
            Some(id) => {
                self.nodes[id as usize] = node;
                id
            }
            None => {
                let id = self.nodes.len() as NodeId;
                self.nodes.push(node);
                id
            }
        }
    }

    /// Releases an arena slot for reuse, blanking it so a stale routing
    /// entry can never be traversed by mistake.
    fn free(&mut self, node: NodeId) {
        self.nodes[node as usize] = Node::Leaf(Vec::new());
        self.free_nodes.push(node);
    }

    /// Recursive single-path insert. Returns the two replacement entries when
    /// `node` split; `dist_to_node` is the distance from the new point to the
    /// routing object of the entry pointing at `node` (0 at the root), and
    /// `node_parent_center` that routing object's coordinates.
    fn insert_rec(
        &mut self,
        node: NodeId,
        vector: &[f32],
        internal: u32,
        pd: &[f32],
        dist_to_node: f32,
        node_parent_center: Option<&[f32]>,
    ) -> Option<(InnerEntry, InnerEntry)> {
        let is_leaf = matches!(self.nodes[node as usize], Node::Leaf(_));
        if is_leaf {
            let capacity = self.cfg.capacity;
            let Node::Leaf(entries) = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            entries.push(LeafEntry {
                internal,
                external: self.externals[internal as usize],
                parent_dist: dist_to_node,
                pivot_dists: pd.into(),
            });
            self.leaf_of[internal as usize] = node;
            if entries.len() > capacity {
                return Some(self.split_leaf(node, node_parent_center));
            }
            return None;
        }

        let (best, center, child, d) = self.choose_subtree(node, vector, pd);
        let split = self.insert_rec(child, vector, internal, pd, d, Some(&center));
        if let Some((mut e1, mut e2)) = split {
            if let Some(pc) = node_parent_center {
                e1.parent_dist = euclidean(&e1.center, pc);
                e2.parent_dist = euclidean(&e2.center, pc);
                self.build_dist_computations += 2;
            }
            let capacity = self.cfg.capacity;
            let Node::Inner(entries) = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            entries[best] = e1;
            entries.push(e2);
            if entries.len() > capacity {
                return Some(self.split_inner(node, node_parent_center));
            }
        }
        None
    }

    /// Picks the routing entry of `node` for the new point: prefer the
    /// closest entry already covering the point; otherwise minimize radius
    /// enlargement. Updates the chosen entry's radius and rings on the way.
    fn choose_subtree(
        &mut self,
        node: NodeId,
        vector: &[f32],
        pd: &[f32],
    ) -> (usize, Vec<f32>, NodeId, f32) {
        let Node::Inner(entries) = &mut self.nodes[node as usize] else {
            unreachable!("choose_subtree on a leaf")
        };
        let dists: Vec<f32> = entries
            .iter()
            .map(|e| euclidean(vector, &e.center))
            .collect();
        self.build_dist_computations += entries.len() as u64;

        let mut best = usize::MAX;
        let mut best_key = f32::INFINITY;
        let mut covered = false;
        for (i, e) in entries.iter().enumerate() {
            let d = dists[i];
            if d <= e.radius {
                if !covered || d < best_key {
                    covered = true;
                    best = i;
                    best_key = d;
                }
            } else if !covered {
                let enlarge = d - e.radius;
                if enlarge < best_key {
                    best = i;
                    best_key = enlarge;
                }
            }
        }
        debug_assert!(best != usize::MAX);

        let e = &mut entries[best];
        let d = dists[best];
        if d > e.radius {
            e.radius = d;
        }
        for (ring, &p) in e.rings.iter_mut().zip(pd) {
            ring.include(p);
        }
        (best, e.center.to_vec(), e.child, d)
    }

    /// Splits an overflowing leaf node; returns the two replacement routing
    /// entries (their `parent_dist` is filled in by the caller).
    fn split_leaf(&mut self, node: NodeId, _parent: Option<&[f32]>) -> (InnerEntry, InnerEntry) {
        let entries = {
            let Node::Leaf(entries) = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            std::mem::take(entries)
        };
        let n = entries.len();
        debug_assert!(n >= 2);

        // Pairwise distance matrix between member points.
        let mut dmat = vec![0.0f32; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = euclidean(
                    self.points.point(entries[i].internal as usize),
                    self.points.point(entries[j].internal as usize),
                );
                dmat[i * n + j] = d;
                dmat[j * n + i] = d;
            }
        }
        self.build_dist_computations += (n * (n - 1) / 2) as u64;

        let (pi, pj, assign) = promote_mm_rad(n, &dmat, |_k| 0.0);
        let c1: Box<[f32]> = self.points.point(entries[pi].internal as usize).into();
        let c2: Box<[f32]> = self.points.point(entries[pj].internal as usize).into();

        let (mut g1, mut g2) = (Vec::new(), Vec::new());
        let (mut r1, mut r2) = (0.0f32, 0.0f32);
        let s = self.pivots.len();
        let (mut rings1, mut rings2) = (vec![Ring::EMPTY; s], vec![Ring::EMPTY; s]);
        for (k, mut e) in entries.into_iter().enumerate() {
            if assign[k] {
                e.parent_dist = dmat[k * n + pi];
                r1 = r1.max(e.parent_dist);
                for (ring, &p) in rings1.iter_mut().zip(e.pivot_dists.iter()) {
                    ring.include(p);
                }
                g1.push(e);
            } else {
                e.parent_dist = dmat[k * n + pj];
                r2 = r2.max(e.parent_dist);
                for (ring, &p) in rings2.iter_mut().zip(e.pivot_dists.iter()) {
                    ring.include(p);
                }
                g2.push(e);
            }
        }

        for e in &g1 {
            self.leaf_of[e.internal as usize] = node;
        }
        self.nodes[node as usize] = Node::Leaf(g1);
        let new_node = self.alloc(Node::Leaf(g2));
        let Node::Leaf(moved) = &self.nodes[new_node as usize] else {
            unreachable!()
        };
        for e in moved {
            self.leaf_of[e.internal as usize] = new_node;
        }

        (
            InnerEntry {
                center: c1,
                radius: r1,
                parent_dist: 0.0,
                child: node,
                rings: rings1.into_boxed_slice(),
            },
            InnerEntry {
                center: c2,
                radius: r2,
                parent_dist: 0.0,
                child: new_node,
                rings: rings2.into_boxed_slice(),
            },
        )
    }

    /// Splits an overflowing inner node.
    fn split_inner(&mut self, node: NodeId, _parent: Option<&[f32]>) -> (InnerEntry, InnerEntry) {
        let entries = {
            let Node::Inner(entries) = &mut self.nodes[node as usize] else {
                unreachable!()
            };
            std::mem::take(entries)
        };
        let n = entries.len();
        debug_assert!(n >= 2);

        let mut dmat = vec![0.0f32; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let d = euclidean(&entries[i].center, &entries[j].center);
                dmat[i * n + j] = d;
                dmat[j * n + i] = d;
            }
        }
        self.build_dist_computations += (n * (n - 1) / 2) as u64;

        let (pi, pj, assign) = promote_mm_rad(n, &dmat, |k| entries[k].radius);

        let c1: Box<[f32]> = entries[pi].center.clone();
        let c2: Box<[f32]> = entries[pj].center.clone();

        let (mut g1, mut g2) = (Vec::new(), Vec::new());
        let (mut r1, mut r2) = (0.0f32, 0.0f32);
        let s = self.pivots.len();
        let (mut rings1, mut rings2) = (vec![Ring::EMPTY; s], vec![Ring::EMPTY; s]);
        for (k, mut e) in entries.into_iter().enumerate() {
            if assign[k] {
                e.parent_dist = dmat[k * n + pi];
                r1 = r1.max(e.parent_dist + e.radius);
                for (ring, &er) in rings1.iter_mut().zip(e.rings.iter()) {
                    ring.merge(er);
                }
                g1.push(e);
            } else {
                e.parent_dist = dmat[k * n + pj];
                r2 = r2.max(e.parent_dist + e.radius);
                for (ring, &er) in rings2.iter_mut().zip(e.rings.iter()) {
                    ring.merge(er);
                }
                g2.push(e);
            }
        }

        self.nodes[node as usize] = Node::Inner(g1);
        let new_node = self.alloc(Node::Inner(g2));

        (
            InnerEntry {
                center: c1,
                radius: r1,
                parent_dist: 0.0,
                child: node,
                rings: rings1.into_boxed_slice(),
            },
            InnerEntry {
                center: c2,
                radius: r2,
                parent_dist: 0.0,
                child: new_node,
                rings: rings2.into_boxed_slice(),
            },
        )
    }

    /// Removes the point with external id `external`; `false` when no such
    /// point is indexed (including ids that were already deleted).
    ///
    /// This is a true M-tree leaf removal, not a tombstone: the entry
    /// leaves its leaf, a leaf that empties is pruned from its parent
    /// (recursively — a routing entry never points at an empty subtree), a
    /// root left with a single routing entry collapses into its child, and
    /// the freed arena slots go on a free list the next allocation reuses.
    /// The internal point store stays dense via swap-removal, so memory
    /// tracks the live point count.
    ///
    /// Covering radii and hyper-rings of the surviving ancestors are *not*
    /// shrunk: they remain correct upper/outer bounds (every remaining
    /// point still satisfies them), merely looser than a fresh build would
    /// produce — deletions trade a little pruning power for O(capacity)
    /// structural work in the common case. Only when a leaf *empties*
    /// does the prune pay a root-to-leaf path search (a DFS over inner
    /// nodes; the arena stores no parent pointers), and a rebuild
    /// restores tight bounds.
    pub fn delete(&mut self, external: PointId) -> bool {
        let Some(&internal) = self.ext_index.get(&external) else {
            return false;
        };
        let leaf = self.leaf_of[internal as usize];
        // The prune path is only needed when this removal empties the
        // leaf; don't pay the DFS for the overwhelmingly common case.
        let will_empty = matches!(&self.nodes[leaf as usize], Node::Leaf(e) if e.len() == 1);
        let path = if will_empty {
            self.path_to(leaf)
        } else {
            Vec::new()
        };
        let Node::Leaf(entries) = &mut self.nodes[leaf as usize] else {
            unreachable!("leaf_of points at an inner node")
        };
        let pos = entries
            .iter()
            .position(|e| e.internal == internal)
            .expect("leaf_of points at the holding leaf");
        entries.remove(pos);
        if entries.is_empty() {
            self.prune(leaf, path);
        }
        self.ext_index.remove(&external);
        self.compact_point_store(internal);
        true
    }

    /// The `(inner node, entry index)` chain from the root down to (but
    /// excluding) `target`; empty when `target` is the root.
    fn path_to(&self, target: NodeId) -> Vec<(NodeId, usize)> {
        let mut path = Vec::new();
        if self.root != target {
            let found = self.dfs_path(self.root, target, &mut path);
            assert!(found, "node {target} not reachable from the root");
        }
        path
    }

    fn dfs_path(&self, node: NodeId, target: NodeId, path: &mut Vec<(NodeId, usize)>) -> bool {
        let Node::Inner(entries) = &self.nodes[node as usize] else {
            return false;
        };
        for (i, e) in entries.iter().enumerate() {
            path.push((node, i));
            if e.child == target || self.dfs_path(e.child, target, path) {
                return true;
            }
            path.pop();
        }
        false
    }

    /// Detaches the emptied `node` from its parent, propagating upward
    /// while parents empty too, then collapses a single-entry root. An
    /// emptied *root* is normalized back to the empty-leaf state
    /// [`PmTree::new`] starts from.
    fn prune(&mut self, mut node: NodeId, mut path: Vec<(NodeId, usize)>) {
        loop {
            let Some((parent, idx)) = path.pop() else {
                // The whole tree emptied out.
                self.nodes[node as usize] = Node::Leaf(Vec::new());
                return;
            };
            self.free(node);
            let Node::Inner(entries) = &mut self.nodes[parent as usize] else {
                unreachable!("path holds a leaf as a parent")
            };
            entries.remove(idx);
            if !entries.is_empty() {
                break;
            }
            node = parent;
        }
        self.collapse_root();
    }

    /// While the root is an inner node with exactly one routing entry,
    /// adopt its child as the root (the inverse of a root split). Root
    /// entries' `parent_dist` is ignored by both the cursor and the
    /// invariant checker, so no distances need recomputing.
    fn collapse_root(&mut self) {
        while let Node::Inner(entries) = &self.nodes[self.root as usize] {
            if entries.len() != 1 {
                break;
            }
            let child = entries[0].child;
            self.free(self.root);
            self.root = child;
        }
    }

    /// Keeps the internal point store dense after the removal of row
    /// `internal`: the last row moves into the hole (leaf entry, external
    /// map and leaf map rewritten to match) and every buffer shrinks by
    /// one. The *deleted* entry is already gone from its leaf, so scanning
    /// for the moved row's entry is unambiguous.
    fn compact_point_store(&mut self, internal: u32) {
        let last = (self.externals.len() - 1) as u32;
        self.points.swap_remove(internal as usize);
        if internal != last {
            let moved_external = self.externals[last as usize];
            self.externals[internal as usize] = moved_external;
            self.ext_index.insert(moved_external, internal);
            let moved_leaf = self.leaf_of[last as usize];
            self.leaf_of[internal as usize] = moved_leaf;
            let Node::Leaf(entries) = &mut self.nodes[moved_leaf as usize] else {
                unreachable!("leaf_of points at an inner node")
            };
            let entry = entries
                .iter_mut()
                .find(|e| e.internal == last)
                .expect("leaf_of points at the holding leaf");
            entry.internal = internal;
        }
        self.externals.pop();
        self.leaf_of.pop();
    }

    /// Exports the complete tree state with the node arena free-list-
    /// compacted (see [`PmTreeParts`]). The tree itself is untouched.
    pub fn to_parts(&self) -> PmTreeParts {
        // Dense remap dropping freed slots; surviving nodes keep their
        // relative order (ids never influence traversal, but a stable
        // order keeps the export deterministic).
        let mut free = vec![false; self.nodes.len()];
        for &f in &self.free_nodes {
            free[f as usize] = true;
        }
        let mut remap = vec![NodeId::MAX; self.nodes.len()];
        let mut next: NodeId = 0;
        for id in 0..self.nodes.len() {
            if !free[id] {
                remap[id] = next;
                next += 1;
            }
        }
        let mut nodes = Vec::with_capacity(next as usize);
        for (id, node) in self.nodes.iter().enumerate() {
            if free[id] {
                continue;
            }
            nodes.push(match node {
                Node::Inner(es) => RawNode::Inner(
                    es.iter()
                        .map(|e| {
                            let mut e = e.clone();
                            e.child = remap[e.child as usize];
                            e
                        })
                        .collect(),
                ),
                Node::Leaf(es) => RawNode::Leaf(es.clone()),
            });
        }
        PmTreeParts {
            dim: self.dim,
            cfg: self.cfg,
            pivots: self.pivots.clone(),
            nodes,
            root: remap[self.root as usize],
            points: self.points.clone(),
            externals: self.externals.clone(),
            leaf_of: self.leaf_of.iter().map(|&l| remap[l as usize]).collect(),
            build_dist_computations: self.build_dist_computations,
        }
    }

    /// Reassembles a tree from exported parts, rebuilding the id map by
    /// inverting `externals` and starting with an empty free list (the
    /// exported arena is compacted). The result is validated with
    /// [`PmTree::verify_structure`] before it is returned, so corrupted
    /// or internally inconsistent parts come back as `Err`, never as a
    /// tree that panics later.
    pub fn from_parts(parts: PmTreeParts) -> Result<Self, String> {
        if parts.dim == 0 {
            return Err("dimension must be positive".into());
        }
        if parts.cfg.capacity < 2 {
            return Err(format!("node capacity {} below 2", parts.cfg.capacity));
        }
        if parts.pivots.len() != parts.cfg.num_pivots {
            return Err(format!(
                "{} pivots but config declares {}",
                parts.pivots.len(),
                parts.cfg.num_pivots
            ));
        }
        let mut ext_index = HashMap::with_capacity(parts.externals.len());
        for (internal, &external) in parts.externals.iter().enumerate() {
            if ext_index.insert(external, internal as u32).is_some() {
                return Err(format!("external id {external} appears twice"));
            }
        }
        let tree = Self {
            dim: parts.dim,
            cfg: parts.cfg,
            pivots: parts.pivots,
            nodes: parts
                .nodes
                .into_iter()
                .map(|n| match n {
                    RawNode::Inner(es) => Node::Inner(es),
                    RawNode::Leaf(es) => Node::Leaf(es),
                })
                .collect(),
            root: parts.root,
            points: parts.points,
            externals: parts.externals,
            ext_index,
            leaf_of: parts.leaf_of,
            free_nodes: Vec::new(),
            build_dist_computations: parts.build_dist_computations,
        };
        tree.verify_structure()?;
        Ok(tree)
    }

    /// Validates the *structural* invariants only — index ranges, map
    /// consistency, arena reachability — without recomputing a single
    /// distance. This is the cheap load-time check snapshot restoration
    /// runs ([`PmTree::verify_invariants`] adds the O(n · height)
    /// geometric audit on top; checksums already guard against bit-rot,
    /// structure checks guard against panics and out-of-bounds access).
    pub fn verify_structure(&self) -> Result<(), String> {
        let n = self.externals.len();
        if n != self.points.len() {
            return Err(format!(
                "{} external ids but {} stored points",
                n,
                self.points.len()
            ));
        }
        if !self.points.is_empty() && self.points.dim() != self.dim {
            return Err(format!(
                "point store in R^{}, tree in R^{}",
                self.points.dim(),
                self.dim
            ));
        }
        if self.leaf_of.len() != n {
            return Err(format!(
                "leaf map covers {} rows, point store holds {n}",
                self.leaf_of.len()
            ));
        }
        if self.ext_index.len() != n {
            return Err(format!(
                "id map holds {} entries for {n} points",
                self.ext_index.len()
            ));
        }
        for (internal, &external) in self.externals.iter().enumerate() {
            if self.ext_index.get(&external) != Some(&(internal as u32)) {
                return Err(format!(
                    "id map does not send external {external} back to row {internal}"
                ));
            }
        }
        for p in &self.pivots {
            if p.len() != self.dim {
                return Err(format!("pivot in R^{}, tree in R^{}", p.len(), self.dim));
            }
        }
        let s = self.pivots.len();
        if self.root as usize >= self.nodes.len() {
            return Err(format!(
                "root {} outside the {}-node arena",
                self.root,
                self.nodes.len()
            ));
        }
        let mut reached = vec![false; self.nodes.len()];
        let mut seen = vec![false; n];
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if reached[node as usize] {
                return Err(format!("node {node} reachable through two parents"));
            }
            reached[node as usize] = true;
            match &self.nodes[node as usize] {
                Node::Inner(entries) => {
                    if entries.is_empty() {
                        return Err("inner node with no entries".into());
                    }
                    for e in entries {
                        if e.center.len() != self.dim {
                            return Err(format!(
                                "routing center in R^{}, tree in R^{}",
                                e.center.len(),
                                self.dim
                            ));
                        }
                        if e.rings.len() != s {
                            return Err(format!(
                                "{} rings on a routing entry, {s} pivots",
                                e.rings.len()
                            ));
                        }
                        if e.child as usize >= self.nodes.len() {
                            return Err(format!(
                                "child {} outside the {}-node arena",
                                e.child,
                                self.nodes.len()
                            ));
                        }
                        stack.push(e.child);
                    }
                }
                Node::Leaf(entries) => {
                    for e in entries {
                        if e.internal as usize >= n {
                            return Err(format!(
                                "leaf row {} outside the {n}-point store",
                                e.internal
                            ));
                        }
                        if e.pivot_dists.len() != s {
                            return Err(format!(
                                "{} pivot distances on a leaf entry, {s} pivots",
                                e.pivot_dists.len()
                            ));
                        }
                        if seen[e.internal as usize] {
                            return Err(format!("point {} reachable twice", e.internal));
                        }
                        seen[e.internal as usize] = true;
                        if self.leaf_of[e.internal as usize] != node {
                            return Err(format!(
                                "leaf map sends row {} to node {}, found in node {node}",
                                e.internal, self.leaf_of[e.internal as usize]
                            ));
                        }
                        if e.external != self.externals[e.internal as usize] {
                            return Err(format!(
                                "leaf entry for row {} carries external {} (store says {})",
                                e.internal, e.external, self.externals[e.internal as usize]
                            ));
                        }
                    }
                }
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("point {missing} not reachable from the root"));
        }
        let mut free = vec![false; self.nodes.len()];
        for &f in &self.free_nodes {
            if f as usize >= self.nodes.len() {
                return Err(format!("free-list id {f} outside the arena"));
            }
            if reached[f as usize] {
                return Err(format!("node {f} is both reachable and on the free list"));
            }
            if free[f as usize] {
                return Err(format!("node {f} is on the free list twice"));
            }
            free[f as usize] = true;
        }
        if let Some(leaked) = (0..self.nodes.len()).find(|&id| !reached[id] && !free[id]) {
            return Err(format!(
                "node {leaked} is neither reachable nor on the free list"
            ));
        }
        Ok(())
    }

    /// Panicking [`PmTree::verify_invariants`], for sprinkling through
    /// property tests and debug builds (compiled under `cfg(test)` or the
    /// `invariants` feature).
    #[cfg(any(test, feature = "invariants"))]
    pub fn check_invariants(&self) {
        if let Err(violation) = self.verify_invariants() {
            panic!("PM-tree invariant violated: {violation}");
        }
    }

    /// Validates every structural invariant; used by tests and proptests.
    ///
    /// Checks, for every routing entry: (1) all points of its subtree lie
    /// within `radius` of its center, (2) each hyper-ring contains the
    /// pivot distance of every point below it, (3) children's `parent_dist`
    /// matches the distance to the routing object, and (4) the leaf entries
    /// cover exactly the live points. On top of the geometry, the mutable
    /// layer's bookkeeping is audited: external ids are unique and
    /// round-trip through the id map, `leaf_of` points at the leaf really
    /// holding each row, and every arena slot is either reachable from the
    /// root or parked on the free list — never both, never neither.
    pub fn verify_invariants(&self) -> Result<(), String> {
        if self.externals.len() != self.points.len() {
            return Err(format!(
                "{} external ids but {} stored points",
                self.externals.len(),
                self.points.len()
            ));
        }
        if self.leaf_of.len() != self.externals.len() {
            return Err(format!(
                "leaf map covers {} rows, point store holds {}",
                self.leaf_of.len(),
                self.externals.len()
            ));
        }
        if self.ext_index.len() != self.externals.len() {
            return Err(format!(
                "id map holds {} entries for {} points (duplicate external id?)",
                self.ext_index.len(),
                self.externals.len()
            ));
        }
        for (internal, &external) in self.externals.iter().enumerate() {
            if self.ext_index.get(&external) != Some(&(internal as u32)) {
                return Err(format!(
                    "id map does not send external {external} back to row {internal}"
                ));
            }
        }
        let mut seen = vec![false; self.len()];
        let mut reached = vec![false; self.nodes.len()];
        self.verify_node(self.root, None, &mut seen, &mut reached)?;
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("point {missing} not reachable from the root"));
        }
        let mut free = vec![false; self.nodes.len()];
        for &f in &self.free_nodes {
            if reached[f as usize] {
                return Err(format!("node {f} is both reachable and on the free list"));
            }
            if free[f as usize] {
                return Err(format!("node {f} is on the free list twice"));
            }
            free[f as usize] = true;
        }
        if let Some(leaked) = (0..self.nodes.len()).find(|&id| !reached[id] && !free[id]) {
            return Err(format!(
                "node {leaked} is neither reachable nor on the free list"
            ));
        }
        Ok(())
    }

    fn verify_node(
        &self,
        node: NodeId,
        parent_center: Option<&[f32]>,
        seen: &mut [bool],
        reached: &mut [bool],
    ) -> Result<(), String> {
        const EPS: f32 = 1e-3;
        if reached[node as usize] {
            return Err(format!("node {node} reachable through two parents"));
        }
        reached[node as usize] = true;
        match &self.nodes[node as usize] {
            Node::Leaf(entries) => {
                for e in entries {
                    if self.leaf_of[e.internal as usize] != node {
                        return Err(format!(
                            "leaf map sends row {} to node {}, found in node {node}",
                            e.internal, self.leaf_of[e.internal as usize]
                        ));
                    }
                    let p = self.points.point(e.internal as usize);
                    if let Some(pc) = parent_center {
                        let d = euclidean(p, pc);
                        if (d - e.parent_dist).abs() > EPS * (1.0 + d) {
                            return Err(format!(
                                "leaf parent_dist {} != {} for point {}",
                                e.parent_dist, d, e.internal
                            ));
                        }
                    }
                    for (i, (&pd, pivot)) in
                        e.pivot_dists.iter().zip(self.pivots.iter()).enumerate()
                    {
                        let d = euclidean(p, pivot);
                        if (d - pd).abs() > EPS * (1.0 + d) {
                            return Err(format!("leaf pivot_dist[{i}] stale for {}", e.internal));
                        }
                    }
                    if seen[e.internal as usize] {
                        return Err(format!("point {} reachable twice", e.internal));
                    }
                    seen[e.internal as usize] = true;
                    if e.external != self.externals[e.internal as usize] {
                        return Err(format!(
                            "leaf entry for row {} carries external {} (store says {})",
                            e.internal, e.external, self.externals[e.internal as usize]
                        ));
                    }
                }
                Ok(())
            }
            Node::Inner(entries) => {
                if entries.is_empty() {
                    return Err("inner node with no entries".into());
                }
                for e in entries {
                    if let Some(pc) = parent_center {
                        let d = euclidean(&e.center, pc);
                        if (d - e.parent_dist).abs() > EPS * (1.0 + d) {
                            return Err(format!("inner parent_dist {} != {d}", e.parent_dist));
                        }
                    }
                    // every point below must respect radius and rings
                    let mut stack = vec![e.child];
                    while let Some(nid) = stack.pop() {
                        match &self.nodes[nid as usize] {
                            Node::Inner(es) => stack.extend(es.iter().map(|c| c.child)),
                            Node::Leaf(ls) => {
                                for l in ls {
                                    let p = self.points.point(l.internal as usize);
                                    let d = euclidean(p, &e.center);
                                    if d > e.radius + EPS * (1.0 + d) {
                                        return Err(format!(
                                            "point {} at {d} outside radius {}",
                                            l.internal, e.radius
                                        ));
                                    }
                                    for (ri, (ring, &pd)) in
                                        e.rings.iter().zip(l.pivot_dists.iter()).enumerate()
                                    {
                                        if pd < ring.min - EPS || pd > ring.max + EPS {
                                            return Err(format!(
                                                "pivot dist {pd} outside ring {ri} [{}, {}]",
                                                ring.min, ring.max
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                    self.verify_node(e.child, Some(&e.center), seen, reached)?;
                }
                Ok(())
            }
        }
    }
}

/// mM_RAD promotion: evaluates every pair of members as routing objects,
/// assigns the rest to the closer one (generalized hyperplane), and keeps the
/// pair minimizing the larger covering radius. `extra(k)` adds a member's own
/// covering radius when splitting inner nodes. Returns the promoted pair and
/// the side assignment (`true` = first group).
fn promote_mm_rad(
    n: usize,
    dmat: &[f32],
    extra: impl Fn(usize) -> f32,
) -> (usize, usize, Vec<bool>) {
    let mut best_cost = f32::INFINITY;
    let mut best = (0usize, 1usize);
    for i in 0..n {
        for j in i + 1..n {
            let (mut r1, mut r2) = (extra(i), extra(j));
            let mut balance = 0i32;
            for k in 0..n {
                if k == i || k == j {
                    continue;
                }
                let di = dmat[k * n + i];
                let dj = dmat[k * n + j];
                let to_first = di < dj || (di == dj && balance <= 0);
                if to_first {
                    balance += 1;
                    r1 = r1.max(di + extra(k));
                } else {
                    balance -= 1;
                    r2 = r2.max(dj + extra(k));
                }
            }
            let cost = r1.max(r2);
            if cost < best_cost {
                best_cost = cost;
                best = (i, j);
            }
        }
    }
    let (pi, pj) = best;
    let mut balance = 0i32;
    let assign: Vec<bool> = (0..n)
        .map(|k| {
            if k == pi {
                balance += 1;
                true
            } else if k == pj {
                balance -= 1;
                false
            } else {
                let di = dmat[k * n + pi];
                let dj = dmat[k * n + pj];
                let to_first = di < dj || (di == dj && balance <= 0);
                if to_first {
                    balance += 1;
                } else {
                    balance -= 1;
                }
                to_first
            }
        })
        .collect();
    (pi, pj, assign)
}
