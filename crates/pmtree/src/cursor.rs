//! lint: hot-path
//!
//! Best-first incremental traversal of the PM-tree.
//!
//! [`RangeCursor`] pops tree regions in order of a *lower bound* on their
//! projected distance to the query and yields points in non-decreasing exact
//! distance. Two properties make it the right engine for the paper's
//! Algorithm 2:
//!
//! 1. `next_within(r)` behaves exactly like the paper's `range(q', r)` query,
//!    but *incrementally*: when Algorithm 2 enlarges the radius (`r ← c·r`),
//!    the cursor simply continues popping the preserved frontier — no work is
//!    repeated across rounds, which is how PM-LSH "combines the ideas of the
//!    RE and MI methods".
//! 2. Lower bounds are refined lazily: an entry is first enqueued under its
//!    cheap bound (parent-distance and pivot-ring filters, no new distance
//!    computation) and the exact center/point distance is only computed when
//!    the entry reaches the top of the frontier. Entries pruned by radius
//!    never cost a distance computation, mirroring the M-tree/PM-tree
//!    filtering rules (Eq. 5).

use crate::entry::{InnerEntry, LeafEntry};
use crate::tree::{Node, PmTree};
use crate::NodeId;
use pm_lsh_metric::{euclidean, sq_dist_within, PointId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, Debug)]
enum ItemKind {
    /// Routing entry not yet resolved: only cheap bounds applied.
    InnerApprox { node: NodeId, idx: u32 },
    /// Routing entry with exact center distance; pops by expanding its child.
    InnerReady { child: NodeId, dq_center: f32 },
    /// Leaf entry not yet resolved (pivot/parent bounds only).
    LeafApprox { node: NodeId, idx: u32 },
    /// Leaf entry whose exact distance computation was abandoned
    /// mid-kernel: the distance provably exceeds the radius of the round
    /// that touched it. Resurfaces in a later (larger-radius) round and is
    /// then re-measured against that round's bound — without recounting
    /// the distance computation, which was paid on first touch.
    LeafAbandoned { node: NodeId, idx: u32 },
    /// Point with exact projected distance; pops by yielding.
    LeafExact { external: PointId, dist: f32 },
}

/// Conservative squared-radius admission bound for early-abandoning leaf
/// distances: every squared distance whose rounded `sqrt` is `<= radius`
/// satisfies `sq <= sq_bound(radius)`, so abandonment can only drop
/// points the exact comparison would also have kept *outside* the radius.
/// Squaring and stepping up two ulps covers the worst-case rounding of
/// both the square and the candidate's own `sqrt` (the same argument as
/// the verification bound in `pm-lsh-core`); borderline over-admitted
/// points are simply computed in full, exactly as before abandonment.
#[inline]
fn sq_bound(radius: f32) -> f32 {
    if radius.is_infinite() {
        f32::INFINITY
    } else {
        (radius * radius).next_up().next_up()
    }
}

#[derive(Clone, Copy, Debug)]
struct Item {
    key: f32,
    seq: u32,
    kind: ItemKind,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Item {}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse so the smallest key pops first;
        // tie-break on insertion sequence for determinism.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// When the cursor computes exact distances (an ablation knob; the paper's
/// design corresponds to [`RefineMode::Lazy`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RefineMode {
    /// Entries enter the frontier under cheap bounds (parent-distance and
    /// pivot-ring filters); the exact center/point distance is computed only
    /// when an entry surfaces. Entries pruned by the radius never cost a
    /// distance computation — the M-tree/PM-tree filtering discipline.
    #[default]
    Lazy,
    /// Exact distances are computed for every entry of every expanded node
    /// immediately. Fewer heap operations, strictly more distance
    /// computations; the `ablation` bench quantifies the difference.
    Eager,
}

/// Reusable buffers for a [`RangeCursor`]: the frontier heap's storage,
/// the query-to-pivot distances and an owned copy of the query point.
///
/// A fresh scratch owns no heap memory (`Vec::new` / `BinaryHeap::new` do
/// not allocate); after a query it keeps its capacities, so threading one
/// scratch through repeated [`PmTree::cursor_with_scratch`] /
/// [`RangeCursor::recycle`] round-trips makes the traversal allocation-free
/// at steady state. A scratch is not tied to any particular tree — reusing
/// it across trees of different dimensionality just resizes the buffers.
#[derive(Debug, Default)]
pub struct CursorScratch {
    query: Vec<f32>,
    qp_dists: Vec<f32>,
    heap: BinaryHeap<Item>,
}

impl CursorScratch {
    /// An empty scratch (allocates nothing until first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Incremental best-first cursor over a [`PmTree`].
pub struct RangeCursor<'t> {
    tree: &'t PmTree,
    /// Owned working storage; see [`CursorScratch`]. `scratch.query` holds
    /// the query point, `scratch.qp_dists` the distances from the query to
    /// each global pivot.
    scratch: CursorScratch,
    seq: u32,
    dist_computations: u64,
    mode: RefineMode,
}

impl<'t> RangeCursor<'t> {
    /// Starts a cursor for `query` (projected-space coordinates).
    pub fn new(tree: &'t PmTree, query: &[f32]) -> Self {
        Self::with_mode(tree, query, RefineMode::Lazy)
    }

    /// Starts a cursor with an explicit refinement mode.
    pub fn with_mode(tree: &'t PmTree, query: &[f32], mode: RefineMode) -> Self {
        Self::with_scratch_and_mode(tree, query, CursorScratch::new(), mode)
    }

    /// Starts a cursor over recycled buffers (see [`CursorScratch`]).
    pub fn with_scratch_and_mode(
        tree: &'t PmTree,
        query: &[f32],
        mut scratch: CursorScratch,
        mode: RefineMode,
    ) -> Self {
        assert_eq!(query.len(), tree.dim(), "query has wrong dimensionality");
        scratch.query.clear();
        scratch.query.extend_from_slice(query);
        scratch.qp_dists.clear();
        scratch
            .qp_dists
            .extend(tree.pivots.iter().map(|p| euclidean(query, p)));
        scratch.heap.clear();
        let mut cursor = Self {
            tree,
            scratch,
            seq: 0,
            dist_computations: tree.pivots.len() as u64,
            mode,
        };
        if !tree.is_empty() {
            cursor.push(
                0.0,
                ItemKind::InnerReady {
                    child: tree.root,
                    dq_center: f32::NAN,
                },
            );
        }
        cursor
    }

    /// Finishes this cursor and hands its buffers back for reuse, keeping
    /// their capacities. The contents are stale; the next
    /// [`RangeCursor::with_scratch_and_mode`] clears and refills them.
    pub fn recycle(self) -> CursorScratch {
        self.scratch
    }

    /// Exact distance computations so far (pivot distances included).
    pub fn distance_computations(&self) -> u64 {
        self.dist_computations
    }

    /// `true` once every indexed point has been yielded: the frontier is
    /// empty and no radius enlargement can produce more results.
    pub fn is_exhausted(&self) -> bool {
        self.scratch.heap.is_empty()
    }

    fn push(&mut self, key: f32, kind: ItemKind) {
        let seq = self.seq;
        self.seq += 1;
        self.scratch.heap.push(Item { key, seq, kind });
    }

    /// Cheap lower bound for a routing entry whose exact center distance is
    /// unknown: parent-distance filter plus pivot rings.
    fn inner_cheap_bound(&self, e: &InnerEntry, dq_parent: f32) -> f32 {
        let mut lb = e.ring_lower_bound(&self.scratch.qp_dists);
        if !dq_parent.is_nan() {
            let b = (dq_parent - e.parent_dist).abs() - e.radius;
            if b > lb {
                lb = b;
            }
        }
        lb.max(0.0)
    }

    /// Cheap lower bound for a leaf entry: parent distance plus pivot
    /// distances, both via the triangle inequality.
    fn leaf_cheap_bound(&self, e: &LeafEntry, dq_parent: f32) -> f32 {
        let mut lb = e.pivot_lower_bound(&self.scratch.qp_dists);
        if !dq_parent.is_nan() {
            let b = (dq_parent - e.parent_dist).abs();
            if b > lb {
                lb = b;
            }
        }
        lb
    }

    /// Expands a node whose routing entry has exact center distance
    /// `dq_center` (NaN for the root, which has no routing entry).
    ///
    /// In [`RefineMode::Lazy`], entries whose cheap bound already lies
    /// within `radius` are resolved immediately — they will surface before
    /// the frontier empties anyway, and resolving them now saves one heap
    /// round-trip per entry. Laziness is kept exactly where it pays:
    /// entries beyond the current radius, which may never be touched again.
    fn expand(&mut self, node: NodeId, dq_center: f32, radius: f32) {
        match &self.tree.nodes[node as usize] {
            Node::Inner(entries) => match self.mode {
                RefineMode::Lazy => {
                    for (i, e) in entries.iter().enumerate() {
                        let lb = self.inner_cheap_bound(e, dq_center);
                        if lb <= radius {
                            let dqc = euclidean(&self.scratch.query, &e.center);
                            self.dist_computations += 1;
                            let lb = lb.max((dqc - e.radius).max(0.0));
                            self.push(
                                lb,
                                ItemKind::InnerReady {
                                    child: e.child,
                                    dq_center: dqc,
                                },
                            );
                        } else {
                            self.push(
                                lb,
                                ItemKind::InnerApprox {
                                    node,
                                    idx: i as u32,
                                },
                            );
                        }
                    }
                }
                RefineMode::Eager => {
                    for e in entries.iter() {
                        let dqc = euclidean(&self.scratch.query, &e.center);
                        self.dist_computations += 1;
                        let lb = self
                            .inner_cheap_bound(e, dq_center)
                            .max((dqc - e.radius).max(0.0));
                        self.push(
                            lb,
                            ItemKind::InnerReady {
                                child: e.child,
                                dq_center: dqc,
                            },
                        );
                    }
                }
            },
            Node::Leaf(entries) => match self.mode {
                RefineMode::Lazy => {
                    let bound = sq_bound(radius);
                    for (i, e) in entries.iter().enumerate() {
                        let lb = self.leaf_cheap_bound(e, dq_center);
                        if lb <= radius {
                            // Early-abandoning measurement: a point whose
                            // squared distance exceeds the round's bound
                            // provably lies beyond `radius`, so it would
                            // not have surfaced this round anyway — park
                            // it just past the radius instead of paying
                            // the rest of the kernel and the sqrt.
                            let sq = sq_dist_within(
                                &self.scratch.query,
                                self.tree.points.point(e.internal as usize),
                                bound,
                            );
                            self.dist_computations += 1;
                            if sq <= bound {
                                let dist = sq.sqrt();
                                self.push(
                                    dist,
                                    ItemKind::LeafExact {
                                        external: e.external,
                                        dist,
                                    },
                                );
                            } else {
                                self.push(
                                    lb.max(radius.next_up()),
                                    ItemKind::LeafAbandoned {
                                        node,
                                        idx: i as u32,
                                    },
                                );
                            }
                        } else {
                            self.push(
                                lb,
                                ItemKind::LeafApprox {
                                    node,
                                    idx: i as u32,
                                },
                            );
                        }
                    }
                }
                RefineMode::Eager => {
                    for e in entries.iter() {
                        let dist = euclidean(
                            &self.scratch.query,
                            self.tree.points.point(e.internal as usize),
                        );
                        self.dist_computations += 1;
                        self.push(
                            dist,
                            ItemKind::LeafExact {
                                external: e.external,
                                dist,
                            },
                        );
                    }
                }
            },
        }
    }

    /// Returns the next point whose exact projected distance is at most
    /// `radius`, or `None` when every remaining point is farther away.
    ///
    /// The frontier is preserved across calls, so callers may re-invoke with
    /// a larger radius and continue exactly where they stopped; successive
    /// yields have non-decreasing distance.
    pub fn next_within(&mut self, radius: f32) -> Option<(PointId, f32)> {
        loop {
            let top = *self.scratch.heap.peek()?;
            if top.key > radius {
                return None;
            }
            self.scratch.heap.pop();
            match top.kind {
                ItemKind::InnerApprox { node, idx } => {
                    let Node::Inner(entries) = &self.tree.nodes[node as usize] else {
                        unreachable!()
                    };
                    let e = &entries[idx as usize];
                    let dq_center = euclidean(&self.scratch.query, &e.center);
                    self.dist_computations += 1;
                    let key = top.key.max((dq_center - e.radius).max(0.0));
                    self.push(
                        key,
                        ItemKind::InnerReady {
                            child: e.child,
                            dq_center,
                        },
                    );
                }
                ItemKind::InnerReady { child, dq_center } => {
                    self.expand(child, dq_center, radius);
                }
                ItemKind::LeafApprox { node, idx } => {
                    let Node::Leaf(entries) = &self.tree.nodes[node as usize] else {
                        unreachable!()
                    };
                    let e = &entries[idx as usize];
                    let bound = sq_bound(radius);
                    let sq = sq_dist_within(
                        &self.scratch.query,
                        self.tree.points.point(e.internal as usize),
                        bound,
                    );
                    self.dist_computations += 1;
                    if sq <= bound {
                        let dist = sq.sqrt();
                        self.push(
                            dist,
                            ItemKind::LeafExact {
                                external: e.external,
                                dist,
                            },
                        );
                    } else {
                        self.push(
                            top.key.max(radius.next_up()),
                            ItemKind::LeafAbandoned { node, idx },
                        );
                    }
                }
                ItemKind::LeafAbandoned { node, idx } => {
                    // Re-measure against the current (larger) round's
                    // bound. The distance computation was counted on
                    // first touch; finishing an abandoned kernel is the
                    // remainder of that same computation, not a new one.
                    let Node::Leaf(entries) = &self.tree.nodes[node as usize] else {
                        unreachable!()
                    };
                    let e = &entries[idx as usize];
                    let bound = sq_bound(radius);
                    let sq = sq_dist_within(
                        &self.scratch.query,
                        self.tree.points.point(e.internal as usize),
                        bound,
                    );
                    if sq <= bound {
                        let dist = sq.sqrt();
                        self.push(
                            dist,
                            ItemKind::LeafExact {
                                external: e.external,
                                dist,
                            },
                        );
                    } else {
                        self.push(
                            top.key.max(radius.next_up()),
                            ItemKind::LeafAbandoned { node, idx },
                        );
                    }
                }
                ItemKind::LeafExact { external, dist } => {
                    return Some((external, dist));
                }
            }
        }
    }

    /// Incremental nearest-neighbor iteration: the next unseen point in
    /// non-decreasing projected distance.
    #[allow(clippy::should_implement_trait)] // same contract, fallible state
    pub fn next(&mut self) -> Option<(PointId, f32)> {
        self.next_within(f32::INFINITY)
    }
}

impl PmTree {
    /// All points within `radius` of `query` (the paper's `range(q, r)`),
    /// sorted by ascending distance.
    pub fn range(&self, query: &[f32], radius: f32) -> Vec<(PointId, f32)> {
        let mut cursor = RangeCursor::new(self, query);
        // lint: allow(hot-path) -- owned-result convenience; Algorithm 2 uses the cursor directly
        let mut out = Vec::new();
        while let Some(hit) = cursor.next_within(radius) {
            out.push(hit);
        }
        out
    }

    /// Exact k nearest neighbors of `query` in the indexed (projected) space.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<(PointId, f32)> {
        let mut cursor = RangeCursor::new(self, query);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match cursor.next() {
                Some(hit) => out.push(hit),
                None => break,
            }
        }
        out
    }

    /// Starts an incremental cursor.
    pub fn cursor(&self, query: &[f32]) -> RangeCursor<'_> {
        RangeCursor::new(self, query)
    }

    /// Starts an incremental cursor over recycled buffers: pass the
    /// [`CursorScratch`] returned by a previous cursor's
    /// [`RangeCursor::recycle`] and repeated queries stop allocating. The
    /// traversal is identical to [`PmTree::cursor`] in every observable way.
    pub fn cursor_with_scratch(&self, query: &[f32], scratch: CursorScratch) -> RangeCursor<'_> {
        RangeCursor::with_scratch_and_mode(self, query, scratch, RefineMode::Lazy)
    }

    /// Starts an incremental cursor with an explicit [`RefineMode`].
    pub fn cursor_with_mode(&self, query: &[f32], mode: RefineMode) -> RangeCursor<'_> {
        RangeCursor::with_mode(self, query, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PmTreeConfig;
    use pm_lsh_metric::Dataset;
    use pm_lsh_stats::Rng;

    fn random_dataset(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(dim, n);
        let mut buf = vec![0.0f32; dim];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    #[test]
    fn lazy_and_eager_return_identical_results() {
        let ds = random_dataset(600, 8, 51);
        let mut rng = Rng::new(52);
        let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
        let mut q = vec![0.0f32; 8];
        for _ in 0..10 {
            rng.fill_normal(&mut q);
            let mut lazy = tree.cursor_with_mode(&q, RefineMode::Lazy);
            let mut eager = tree.cursor_with_mode(&q, RefineMode::Eager);
            loop {
                let a = lazy.next_within(3.0);
                let b = eager.next_within(3.0);
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn recycled_scratch_traverses_identically() {
        let ds = random_dataset(1500, 10, 55);
        let mut rng = Rng::new(56);
        let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
        let mut scratch = CursorScratch::new();
        let mut q = vec![0.0f32; 10];
        for round in 0..12 {
            rng.fill_normal(&mut q);
            let mut fresh = tree.cursor(&q);
            let mut reused = tree.cursor_with_scratch(&q, scratch);
            // Interleave radius enlargement the way Algorithm 2 does.
            for radius in [1.0f32, 2.5, f32::INFINITY] {
                loop {
                    let a = fresh.next_within(radius);
                    let b = reused.next_within(radius);
                    assert_eq!(a, b, "round {round} radius {radius}");
                    if a.is_none() {
                        break;
                    }
                }
            }
            assert_eq!(
                fresh.distance_computations(),
                reused.distance_computations(),
                "round {round}"
            );
            scratch = reused.recycle();
        }
    }

    #[test]
    fn lazy_spends_fewer_distance_computations() {
        // With a selective radius, deferring exact distances must pay off:
        // pruned entries never get resolved.
        let ds = random_dataset(4000, 15, 53);
        let mut rng = Rng::new(54);
        let tree = PmTree::build(ds.view(), PmTreeConfig::default(), &mut rng);
        let (mut lazy_total, mut eager_total) = (0u64, 0u64);
        let mut q = vec![0.0f32; 15];
        for _ in 0..10 {
            rng.fill_normal(&mut q);
            let mut lazy = tree.cursor_with_mode(&q, RefineMode::Lazy);
            while lazy.next_within(2.0).is_some() {}
            lazy_total += lazy.distance_computations();
            let mut eager = tree.cursor_with_mode(&q, RefineMode::Eager);
            while eager.next_within(2.0).is_some() {}
            eager_total += eager.distance_computations();
        }
        assert!(
            lazy_total < eager_total,
            "lazy {lazy_total} should beat eager {eager_total}"
        );
    }
}
