//! PM-tree: an M-tree augmented with global pivot hyper-rings.
//!
//! This is the metric index PM-LSH builds in the projected space
//! (Section 4.1, Fig. 4 of the paper). The crate provides:
//!
//! * [`tree::PmTree`] — incremental construction with mM_RAD node splits and
//!   per-entry hyper-ring (`HR`) maintenance; `num_pivots = 0` degrades to a
//!   plain M-tree (used by the Fig. 6 parameter ablation).
//! * [`bulk`] — `PmTree::build_parallel`, a parallel bulk loader that
//!   partitions points by nearest global pivot, builds one subtree per
//!   region concurrently and merges them; its output is identical for
//!   every thread count.
//! * [`cursor::RangeCursor`] — a best-first incremental traversal yielding
//!   points in non-decreasing projected distance, with lazily refined lower
//!   bounds. `next_within(r)` is the building block of the paper's
//!   radius-enlarging Algorithm 2, and plain `next()` provides exact
//!   incremental NN search. [`cursor::CursorScratch`] recycles the
//!   traversal's heap and buffers across queries, so a serving loop stops
//!   allocating once warm.
//! * [`cost::expected_distance_computations`] — the node-based cost model of
//!   Eqs. 5–7 that regenerates the PM-tree column of Table 2.

#![warn(missing_docs)]

pub mod bulk;
pub mod cost;
pub mod cursor;
pub mod entry;
pub mod pivots;
pub mod tree;

pub use cost::expected_distance_computations;
pub use cursor::{CursorScratch, RangeCursor, RefineMode};
pub use entry::{InnerEntry, LeafEntry, Ring};
pub use pivots::select_pivots;
pub use tree::{PmTree, PmTreeConfig, PmTreeParts, RawNode};

/// Index of a node inside the tree arena.
pub type NodeId = u32;
