//! Global pivot selection.
//!
//! The paper (Section 4.1) chooses pivots "with the aim of making the overall
//! volume of the corresponding PM-tree region the smallest". As in the
//! original PM-tree work, a far-apart pivot set yields thin hyper-rings and
//! small region volume, so we use the standard farthest-point (k-center)
//! heuristic on a data sample: repeatedly pick the point maximizing its
//! minimum distance to the already chosen pivots.

use pm_lsh_metric::{euclidean, MatrixView};
use pm_lsh_stats::Rng;

/// Selects `s` pivots from (a sample of) the dataset by farthest-point
/// traversal, returning copies of their coordinates.
///
/// The first pivot is the sampled point farthest from the sample centroid,
/// which anchors the traversal deterministically given `rng`.
pub fn select_pivots(
    view: MatrixView<'_>,
    s: usize,
    sample_size: usize,
    rng: &mut Rng,
) -> Vec<Box<[f32]>> {
    if s == 0 {
        return Vec::new();
    }
    let n = view.len();
    assert!(n > 0, "cannot select pivots from an empty dataset");
    let sample: Vec<usize> = if n <= sample_size {
        (0..n).collect()
    } else {
        rng.sample_indices(n, sample_size)
    };
    let dim = view.dim();

    // Centroid of the sample.
    let mut centroid = vec![0.0f32; dim];
    for &i in &sample {
        for (c, &v) in centroid.iter_mut().zip(view.point(i)) {
            *c += v;
        }
    }
    for c in centroid.iter_mut() {
        *c /= sample.len() as f32;
    }

    // First pivot: farthest sampled point from the centroid.
    let first = sample
        .iter()
        .copied()
        .max_by(|&a, &b| {
            euclidean(view.point(a), &centroid)
                .partial_cmp(&euclidean(view.point(b), &centroid))
                .unwrap()
        })
        .unwrap();

    let mut pivots: Vec<Box<[f32]>> = vec![view.point(first).into()];
    // min distance from each sampled point to the chosen pivot set
    let mut min_dist: Vec<f32> = sample
        .iter()
        .map(|&i| euclidean(view.point(i), &pivots[0]))
        .collect();

    while pivots.len() < s {
        let (best_idx, _) = min_dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let chosen = sample[best_idx];
        let pivot: Box<[f32]> = view.point(chosen).into();
        for (md, &i) in min_dist.iter_mut().zip(&sample) {
            let d = euclidean(view.point(i), &pivot);
            if d < *md {
                *md = d;
            }
        }
        pivots.push(pivot);
    }
    pivots
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::Dataset;

    #[test]
    fn zero_pivots_allowed() {
        let ds = Dataset::from_rows(vec![vec![0.0, 0.0]]);
        let mut rng = Rng::new(1);
        assert!(select_pivots(ds.view(), 0, 10, &mut rng).is_empty());
    }

    #[test]
    fn pivots_are_spread_out() {
        // Four tight clusters at square corners: with s = 4, the pivots
        // should land in four distinct clusters.
        let mut rows = Vec::new();
        let corners = [(0.0, 0.0), (100.0, 0.0), (0.0, 100.0), (100.0, 100.0)];
        let mut rng = Rng::new(2);
        for _ in 0..50 {
            for &(cx, cy) in &corners {
                rows.push(vec![
                    cx + rng.normal_f32() * 0.1,
                    cy + rng.normal_f32() * 0.1,
                ]);
            }
        }
        let ds = Dataset::from_rows(rows);
        let pivots = select_pivots(ds.view(), 4, 200, &mut rng);
        assert_eq!(pivots.len(), 4);
        // each pair of pivots must be far apart (different corners)
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(
                    euclidean(&pivots[i], &pivots[j]) > 50.0,
                    "pivots {i} and {j} collapsed"
                );
            }
        }
    }

    #[test]
    fn more_pivots_than_points_is_capped_by_duplicates() {
        // Selecting s pivots from fewer distinct points still returns s
        // entries (duplicates allowed) without panicking.
        let ds = Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]);
        let mut rng = Rng::new(3);
        let pivots = select_pivots(ds.view(), 3, 10, &mut rng);
        assert_eq!(pivots.len(), 3);
    }
}
