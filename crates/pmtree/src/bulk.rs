//! Parallel PM-tree bulk-loading.
//!
//! [`PmTree::build`] inserts points one at a time — inherently serial,
//! because every insert descends from the current root. The bulk loader
//! exploits the structure the PM-tree already has: the global pivots
//! (Section 4.1 of the paper) induce a Voronoi-style partition of the
//! dataset, and points in different pivot regions end up in disjoint
//! subtrees anyway. So it
//!
//! 1. selects the global pivots exactly as the incremental build does
//!    (same RNG consumption, so downstream seeded sampling is unaffected),
//! 2. assigns every point to its nearest pivot (ties to the lowest pivot
//!    index), computing the per-point pivot-distance rows the leaf entries
//!    need anyway,
//! 3. builds one subtree per non-empty region **concurrently** — each
//!    subtree is an ordinary incremental PM-tree over that region's points
//!    in ascending row order — and
//! 4. merges the subtrees under a fresh root whose routing entries use the
//!    region pivots as routing objects, with covering radii and hyper-rings
//!    folded from the pivot-distance rows of step 2.
//!
//! # Determinism
//!
//! The partition, every subtree, and the merge order depend only on the
//! input — never on `threads`, which merely sets how many workers drain the
//! region queue. A 1-thread and an 8-thread bulk-load therefore produce
//! **identical** trees (same nodes, same entry order, same counters), which
//! is what lets `PmLsh` promise reproducible parallel builds. Note the
//! bulk-loaded tree legitimately differs from the one [`PmTree::build`]
//! grows by repeated root splits; both satisfy every PM-tree invariant and
//! answer queries through the same cursor.
//!
//! Parallelism is bounded by the region count `s` (5 at the paper's
//! operating point) and by region skew; that is the price of a
//! thread-count-invariant partition.

use crate::entry::{InnerEntry, Ring};
use crate::pivots::select_pivots;
use crate::tree::{Node, PmTree, PmTreeConfig};
use crate::NodeId;
use pm_lsh_metric::{euclidean, MatrixView, PointId};
use pm_lsh_stats::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;

impl PmTree {
    /// Builds a tree over every row of `view` (external id = row index),
    /// constructing one subtree per pivot region on up to `threads` OS
    /// threads (0 = available parallelism).
    ///
    /// The result is identical for every `threads` value — see the module
    /// docs for why — and satisfies [`PmTree::verify_invariants`]. Falls
    /// back to the incremental [`PmTree::build`] when partitioning cannot
    /// help (no pivots, more pivots than node capacity, fewer points than
    /// two nodes' worth, or fewer points than pivots — a shape sharded
    /// builds hit routinely, where `select_pivots` pads the set with
    /// duplicates and a partitioned root would carry degenerate
    /// zero-radius routing entries).
    pub fn build_parallel(
        view: MatrixView<'_>,
        cfg: PmTreeConfig,
        rng: &mut Rng,
        threads: usize,
    ) -> Self {
        let pivots = select_pivots(view, cfg.num_pivots, cfg.pivot_sample, rng);
        let n = view.len();
        if pivots.is_empty()
            || pivots.len() > cfg.capacity
            || n <= 2 * cfg.capacity
            || n < pivots.len()
        {
            // Degenerate shapes where a partitioned root is impossible or
            // pointless; the incremental build is equally deterministic.
            let mut tree = Self::new(view.dim(), cfg, pivots);
            for (i, p) in view.iter().enumerate() {
                tree.insert(p, i as PointId);
            }
            return tree;
        }
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };

        let s = pivots.len();
        // Step 2: pivot-distance rows and nearest-pivot assignment, chunked
        // across the workers (pure per-row computation, deterministic).
        let mut pd = vec![0.0f32; n * s];
        let rows_per_chunk = n.div_ceil(threads.min(n));
        std::thread::scope(|scope| {
            for (c, pd_chunk) in pd.chunks_mut(rows_per_chunk * s).enumerate() {
                let start = c * rows_per_chunk;
                let pivots = &pivots;
                scope.spawn(move || {
                    for (j, pd_row) in pd_chunk.chunks_mut(s).enumerate() {
                        let point = view.point(start + j);
                        for (slot, pivot) in pd_row.iter_mut().zip(pivots) {
                            *slot = euclidean(point, pivot);
                        }
                    }
                });
            }
        });
        let mut regions: Vec<Vec<usize>> = vec![Vec::new(); s];
        for i in 0..n {
            let row = &pd[i * s..(i + 1) * s];
            let mut best = 0usize;
            for (j, &d) in row.iter().enumerate().skip(1) {
                if d < row[best] {
                    best = j;
                }
            }
            regions[best].push(i);
        }
        let tasks: Vec<(usize, Vec<usize>)> = regions
            .into_iter()
            .enumerate()
            .filter(|(_, rows)| !rows.is_empty())
            .collect();

        // Step 3: one subtree per non-empty region, workers draining a
        // shared task counter. Results are keyed by task index so the merge
        // order below never depends on completion order.
        let next_task = AtomicUsize::new(0);
        let (results_tx, results_rx) = channel::<(usize, PmTree)>();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(tasks.len()) {
                let next_task = &next_task;
                let results_tx = results_tx.clone();
                let tasks = &tasks;
                let pivots = &pivots;
                let pd = &pd;
                scope.spawn(move || loop {
                    let t = next_task.fetch_add(1, Ordering::Relaxed);
                    let Some((_, rows)) = tasks.get(t) else {
                        return;
                    };
                    let mut sub = PmTree::new(view.dim(), cfg, pivots.to_vec());
                    for &row in rows {
                        let pd_row: Box<[f32]> = pd[row * s..(row + 1) * s].into();
                        sub.insert_with_pivot_dists(view.point(row), row as PointId, pd_row);
                    }
                    let _ = results_tx.send((t, sub));
                });
            }
        });
        drop(results_tx);
        let mut subtrees: Vec<Option<PmTree>> = (0..tasks.len()).map(|_| None).collect();
        for (t, sub) in results_rx {
            subtrees[t] = Some(sub);
        }

        // A single populated region needs no splice and no extra root:
        // its subtree already is the whole tree (root entries keep their
        // "no parent" convention). Only the assignment-phase distance
        // computations must be accounted for.
        if tasks.len() == 1 {
            let mut sub = subtrees
                .pop()
                .flatten()
                .expect("the single region task completed");
            sub.add_build_dist_computations((n * s) as u64);
            return sub;
        }

        // Step 4: splice the subtree arenas into one tree in region order
        // and crown them with a root of per-region routing entries.
        let mut tree = PmTree::new(view.dim(), cfg, pivots);
        tree.nodes.clear();
        tree.add_build_dist_computations((n * s) as u64);
        let mut root_entries = Vec::with_capacity(tasks.len());
        for ((region, rows), sub) in tasks.iter().zip(subtrees) {
            let sub = sub.expect("every region task completed");
            let node_offset = tree.nodes.len() as NodeId;
            let internal_offset = tree.externals.len() as u32;
            let sub_root = sub.root + node_offset;
            tree.add_build_dist_computations(sub.build_distance_computations());
            for mut node in sub.nodes {
                match &mut node {
                    Node::Inner(entries) => {
                        for e in entries {
                            e.child += node_offset;
                        }
                    }
                    Node::Leaf(entries) => {
                        for e in entries {
                            e.internal += internal_offset;
                        }
                    }
                }
                tree.nodes.push(node);
            }
            tree.points.extend_from_view(sub.points.view());
            tree.externals.extend_from_slice(&sub.externals);
            // The mutable layer's bookkeeping splices with the same
            // offsets as the arena: subtrees never free nodes during a
            // build, so only the id map and the leaf map carry over.
            debug_assert!(sub.free_nodes.is_empty());
            for (local, &external) in sub.externals.iter().enumerate() {
                tree.ext_index
                    .insert(external, internal_offset + local as u32);
            }
            tree.leaf_of
                .extend(sub.leaf_of.iter().map(|&leaf| leaf + node_offset));

            // The subtree's top node now hangs under a routing object (the
            // region pivot) instead of the root, so its entries' parent
            // distances must be relative to that pivot. Leaf entries already
            // carry the distance (it *is* a pivot distance); inner entries
            // need one fresh computation each.
            let pivot = tree.pivots[*region].clone();
            let fresh = match &mut tree.nodes[sub_root as usize] {
                Node::Leaf(entries) => {
                    for e in entries {
                        e.parent_dist = e.pivot_dists[*region];
                    }
                    0
                }
                Node::Inner(entries) => {
                    for e in entries.iter_mut() {
                        e.parent_dist = euclidean(&e.center, &pivot);
                    }
                    entries.len() as u64
                }
            };
            tree.add_build_dist_computations(fresh);

            // Covering radius and hyper-rings of the region, folded from
            // the assignment phase's pivot-distance rows.
            let mut radius = 0.0f32;
            let mut rings = vec![Ring::EMPTY; s];
            for &row in rows {
                let pd_row = &pd[row * s..(row + 1) * s];
                radius = radius.max(pd_row[*region]);
                for (ring, &d) in rings.iter_mut().zip(pd_row) {
                    ring.include(d);
                }
            }
            root_entries.push(InnerEntry {
                center: pivot,
                radius,
                parent_dist: 0.0,
                child: sub_root,
                rings: rings.into_boxed_slice(),
            });
        }

        tree.root = tree.nodes.len() as NodeId;
        tree.nodes.push(Node::Inner(root_entries));
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_lsh_metric::Dataset;

    fn blob(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut ds = Dataset::with_capacity(d, n);
        let mut buf = vec![0.0f32; d];
        for _ in 0..n {
            rng.fill_normal(&mut buf);
            ds.push(&buf);
        }
        ds
    }

    fn assert_trees_identical(a: &PmTree, b: &PmTree) {
        assert_eq!(a.root, b.root);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.externals, b.externals);
        assert_eq!(a.points.as_flat(), b.points.as_flat());
        assert_eq!(
            a.build_distance_computations(),
            b.build_distance_computations()
        );
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            match (na, nb) {
                (Node::Leaf(ea), Node::Leaf(eb)) => {
                    assert_eq!(ea.len(), eb.len());
                    for (x, y) in ea.iter().zip(eb) {
                        assert_eq!(x.internal, y.internal);
                        assert_eq!(x.external, y.external);
                        assert_eq!(x.parent_dist, y.parent_dist);
                        assert_eq!(x.pivot_dists, y.pivot_dists);
                    }
                }
                (Node::Inner(ea), Node::Inner(eb)) => {
                    assert_eq!(ea.len(), eb.len());
                    for (x, y) in ea.iter().zip(eb) {
                        assert_eq!(x.center, y.center);
                        assert_eq!(x.radius, y.radius);
                        assert_eq!(x.parent_dist, y.parent_dist);
                        assert_eq!(x.child, y.child);
                        assert_eq!(x.rings, y.rings);
                    }
                }
                _ => panic!("node kind mismatch"),
            }
        }
    }

    #[test]
    fn bulk_load_is_thread_count_invariant() {
        let ds = blob(900, 10, 41);
        let cfg = PmTreeConfig::default();
        let base = PmTree::build_parallel(ds.view(), cfg, &mut Rng::new(7), 1);
        base.verify_invariants().expect("1-thread tree invariants");
        for threads in [0usize, 2, 3, 4, 8] {
            let t = PmTree::build_parallel(ds.view(), cfg, &mut Rng::new(7), threads);
            assert_trees_identical(&base, &t);
        }
    }

    #[test]
    fn bulk_load_satisfies_invariants_and_finds_everything() {
        let ds = blob(700, 8, 42);
        let tree = PmTree::build_parallel(ds.view(), PmTreeConfig::default(), &mut Rng::new(9), 4);
        tree.verify_invariants().expect("bulk-loaded invariants");
        assert_eq!(tree.len(), 700);
        // Exhaustive cursor drain must yield every external id exactly once.
        let mut cursor = tree.cursor(ds.point(3));
        let mut seen = vec![false; 700];
        while let Some((id, _)) = cursor.next() {
            assert!(!seen[id as usize], "id {id} yielded twice");
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "cursor missed points");
    }

    #[test]
    fn bulk_load_matches_incremental_nn_order() {
        // Different tree shapes, same geometry: both cursors must yield the
        // same non-decreasing distance sequence for exact incremental NN.
        let ds = blob(600, 6, 43);
        let cfg = PmTreeConfig::default();
        let inc = PmTree::build(ds.view(), cfg, &mut Rng::new(5));
        let par = PmTree::build_parallel(ds.view(), cfg, &mut Rng::new(5), 4);
        let q = ds.point(11);
        let mut ci = inc.cursor(q);
        let mut cp = par.cursor(q);
        for rank in 0..40 {
            let (_, di) = ci.next().expect("incremental exhausted early");
            let (_, dp) = cp.next().expect("bulk exhausted early");
            assert!(
                (di - dp).abs() <= 1e-4 * (1.0 + di.abs()),
                "rank {rank}: incremental {di} vs bulk {dp}"
            );
        }
    }

    #[test]
    fn duplicate_points_collapse_to_one_region() {
        // All-identical points make every pivot identical, so nearest-pivot
        // ties send every row to region 0 and the single-region shortcut
        // runs: the subtree IS the tree, no wrapper root.
        let ds = Dataset::from_rows(vec![vec![3.0f32, -1.0, 2.0]; 200]);
        let tree = PmTree::build_parallel(ds.view(), PmTreeConfig::default(), &mut Rng::new(8), 4);
        tree.verify_invariants().expect("single-region invariants");
        assert_eq!(tree.len(), 200);
        let mut cursor = tree.cursor(&[3.0, -1.0, 2.0]);
        let mut count = 0;
        while let Some((_, d)) = cursor.next() {
            assert_eq!(d, 0.0);
            count += 1;
        }
        assert_eq!(count, 200);
    }

    #[test]
    fn fewer_points_than_pivots_falls_back_to_incremental() {
        // Sharding deals a dataset round-robin, so a shard can easily hold
        // fewer points than the configured pivot count. The bulk loader
        // must take the incremental fallback there (select_pivots pads the
        // pivot set with duplicates, which would otherwise become
        // degenerate partitioned-root routing entries) and match
        // PmTree::build exactly for every thread count.
        for n in [1usize, 2, 3, 4] {
            let ds = blob(n, 6, 46);
            let cfg = PmTreeConfig {
                num_pivots: 5,
                ..Default::default()
            };
            assert!(n < cfg.num_pivots);
            let inc = PmTree::build(ds.view(), cfg, &mut Rng::new(11));
            for threads in [1usize, 4] {
                let par = PmTree::build_parallel(ds.view(), cfg, &mut Rng::new(11), threads);
                par.verify_invariants().expect("tiny-shard invariants");
                assert_trees_identical(&inc, &par);
            }
        }
    }

    #[test]
    fn small_and_pivotless_inputs_fall_back() {
        let tiny = blob(12, 4, 44);
        let t = PmTree::build_parallel(tiny.view(), PmTreeConfig::default(), &mut Rng::new(1), 4);
        t.verify_invariants().expect("fallback invariants");
        assert_eq!(t.len(), 12);

        let cfg = PmTreeConfig {
            num_pivots: 0,
            ..Default::default()
        };
        let ds = blob(300, 4, 45);
        let t = PmTree::build_parallel(ds.view(), cfg, &mut Rng::new(2), 4);
        t.verify_invariants().expect("M-tree fallback invariants");
        assert_eq!(t.len(), 300);
    }
}
