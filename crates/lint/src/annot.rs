//! The `lint:` annotation grammar.
//!
//! Two forms, both living in ordinary comments so they cost nothing at
//! compile time:
//!
//! * **Module marker** — an inner doc line `//! lint: hot-path` opts the
//!   whole file into the hot-path purity pass.
//! * **Escape hatch** — `// lint: allow(<pass>) -- <reason>` suppresses
//!   one pass for the *statement* it precedes (from the comment's line up
//!   to and including the next `;`). The reason is mandatory: an allow
//!   without one is itself a finding, so every suppression is documented
//!   at the site it applies to.
//!
//! Any other comment whose text starts with `lint:` is reported as a
//! malformed annotation rather than silently ignored — a typo like
//! `lint: alow(hot-path)` must not quietly disable nothing.

use crate::lexer::{CommentKind, LexFile, Tok};
use crate::{Finding, Pass};

/// One parsed escape hatch with its token-index scope.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Which pass is suppressed.
    pub pass: Pass,
    /// The comment's line (for reporting).
    pub line: u32,
    /// The documented reason (after ` -- `).
    pub reason: String,
    /// Suppressed token indexes: `start..=end` into [`LexFile::tokens`].
    pub tok_start: usize,
    /// Inclusive end of the suppressed range.
    pub tok_end: usize,
}

/// All `lint:` annotations found in one file.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// File carries the `//! lint: hot-path` module marker.
    pub hot_path: bool,
    /// Scoped escape hatches.
    pub allows: Vec<Allow>,
}

impl Annotations {
    /// `true` if `pass` is suppressed for the token at `tok_idx`.
    pub fn is_allowed(&self, pass: Pass, tok_idx: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.pass == pass && tok_idx >= a.tok_start && tok_idx <= a.tok_end)
    }
}

fn parse_pass(name: &str) -> Option<Pass> {
    match name {
        "unsafe-audit" => Some(Pass::UnsafeAudit),
        "hot-path" => Some(Pass::HotPath),
        "protocol" => Some(Pass::Protocol),
        "ffi-audit" => Some(Pass::FfiAudit),
        _ => None,
    }
}

/// Scope of a hatch at `line`: tokens from the first token at/after `line`
/// up to and including the next `;` (or end of file). This makes the hatch
/// work both on its own line above a statement and trailing at the end of
/// one, and lets one hatch cover a method chain split across lines.
fn hatch_scope(file: &LexFile, line: u32) -> (usize, usize) {
    let start = file
        .tokens
        .iter()
        .position(|t| t.line >= line)
        .unwrap_or(file.tokens.len());
    let end = file.tokens[start..]
        .iter()
        .position(|t| t.tok == Tok::Punct(';'))
        .map(|off| start + off)
        .unwrap_or_else(|| file.tokens.len().saturating_sub(1));
    (start, end)
}

/// Extracts every `lint:` annotation from `file`, reporting malformed ones
/// into `findings`.
pub fn parse(file: &LexFile, path: &str, findings: &mut Vec<Finding>) -> Annotations {
    let mut out = Annotations::default();
    for comment in &file.comments {
        let text = comment.text.trim();
        let Some(body) = text.strip_prefix("lint:") else {
            continue;
        };
        let body = body.trim();
        if body == "hot-path" {
            if comment.kind == CommentKind::InnerDoc {
                out.hot_path = true;
            } else {
                findings.push(Finding::new(
                    path,
                    comment.line,
                    Pass::Annotation,
                    "`lint: hot-path` must be an inner doc comment (`//! lint: hot-path`) \
                     so it marks the whole module",
                ));
            }
            continue;
        }
        if let Some(rest) = body.strip_prefix("allow(") {
            let Some((pass_name, after)) = rest.split_once(')') else {
                findings.push(Finding::new(
                    path,
                    comment.line,
                    Pass::Annotation,
                    "malformed `lint: allow(...)`: missing closing parenthesis",
                ));
                continue;
            };
            let Some(pass) = parse_pass(pass_name.trim()) else {
                findings.push(Finding::new(
                    path,
                    comment.line,
                    Pass::Annotation,
                    format!(
                        "unknown lint pass '{}' (expected unsafe-audit, hot-path, \
                         protocol or ffi-audit)",
                        pass_name.trim()
                    ),
                ));
                continue;
            };
            let reason = after.trim_start().strip_prefix("--").map(str::trim);
            match reason {
                Some(r) if !r.is_empty() => {
                    let (tok_start, tok_end) = hatch_scope(file, comment.line);
                    out.allows.push(Allow {
                        pass,
                        line: comment.line,
                        reason: r.to_string(),
                        tok_start,
                        tok_end,
                    });
                }
                _ => findings.push(Finding::new(
                    path,
                    comment.line,
                    Pass::Annotation,
                    "`lint: allow(...)` requires a reason: \
                     `// lint: allow(<pass>) -- <reason>`",
                )),
            }
            continue;
        }
        findings.push(Finding::new(
            path,
            comment.line,
            Pass::Annotation,
            format!("unrecognized `lint:` annotation '{body}'"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn hot_path_marker_requires_inner_doc() {
        let mut findings = Vec::new();
        let file = lex("//! lint: hot-path\nfn f() {}\n").unwrap();
        assert!(parse(&file, "x.rs", &mut findings).hot_path);
        assert!(findings.is_empty());

        let file = lex("// lint: hot-path\nfn f() {}\n").unwrap();
        assert!(!parse(&file, "x.rs", &mut findings).hot_path);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn allow_scope_covers_the_next_statement() {
        let mut findings = Vec::new();
        let src = "fn f() {\n    // lint: allow(hot-path) -- cold constructor\n    let v = Vec::new();\n    let w = Vec::new();\n}\n";
        let file = lex(src).unwrap();
        let ann = parse(&file, "x.rs", &mut findings);
        assert!(findings.is_empty());
        assert_eq!(ann.allows.len(), 1);
        // `Vec` of the first statement is covered, the second is not.
        let first_vec = file
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("Vec".into()))
            .unwrap();
        let second_vec = file
            .tokens
            .iter()
            .rposition(|t| t.tok == Tok::Ident("Vec".into()))
            .unwrap();
        assert!(ann.is_allowed(Pass::HotPath, first_vec));
        assert!(!ann.is_allowed(Pass::HotPath, second_vec));
        assert!(!ann.is_allowed(Pass::UnsafeAudit, first_vec));
    }

    #[test]
    fn malformed_allows_are_findings() {
        for bad in [
            "// lint: allow(hot-path)\nfn f() {}\n",     // missing reason
            "// lint: allow(hot-path) -- \nfn f() {}\n", // empty reason
            "// lint: allow(no-such-pass) -- x\nfn f() {}", // unknown pass
            "// lint: alow(hot-path) -- typo\nfn f() {}\n", // typo'd verb
        ] {
            let mut findings = Vec::new();
            let file = lex(bad).unwrap();
            parse(&file, "x.rs", &mut findings);
            assert_eq!(findings.len(), 1, "expected one finding for {bad:?}");
        }
    }
}
