//! A comment/string/char-aware Rust tokenizer — just enough lexing for the
//! lint passes, no parsing.
//!
//! The passes need three things a `grep` cannot give them:
//!
//! * banned identifiers must not fire inside comments, doc comments or
//!   string literals (`"call .unwrap() here"` is prose, not code);
//! * `to_vec` must not match inside `into_vec` (tokens, not substrings);
//! * comments must come back out *separately*, with line numbers, so the
//!   `// SAFETY:` adjacency rule and the `// lint:` annotation grammar can
//!   be checked against the code they sit next to.
//!
//! The lexer is intentionally forgiving about things the passes never look
//! at (it does not validate numeric suffixes, nested generics, or operator
//! jointness) but it is exact about the comment/string/char boundaries that
//! decide what is code.

/// One lexed code token (comments are reported separately).
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal, radix-decoded, suffix stripped.
    Int(u128),
    /// Float literal (value unused by any pass).
    Float,
    /// String, byte-string or raw-string literal; content as written
    /// (escapes not processed — the passes only match ASCII literals
    /// like `PMLSHSNP` that contain none).
    Str(String),
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// What kind of comment a [`Comment`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommentKind {
    /// `// ...`
    Line,
    /// `/// ...` (outer doc)
    OuterDoc,
    /// `//! ...` (inner doc)
    InnerDoc,
    /// `/* ... */` (block, any flavor)
    Block,
}

/// A comment with its starting line and its text (delimiters stripped).
#[derive(Clone, Debug, PartialEq)]
pub struct Comment {
    pub kind: CommentKind,
    pub line: u32,
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Clone, Debug, Default)]
pub struct LexFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl LexFile {
    /// All comments starting exactly on `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments.iter().filter(move |c| c.line == line)
    }

    /// `true` if any code token starts on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        // Tokens are emitted in order; a binary search would work, but the
        // files are small and the passes call this rarely.
        self.tokens.iter().any(|t| t.line == line)
    }
}

/// Why lexing failed (always a fatal, file-level condition).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn error(&self, message: &str) -> LexError {
        LexError {
            line: self.line,
            message: message.to_string(),
        }
    }

    fn line_comment(&mut self, out: &mut LexFile) {
        let start_line = self.line;
        // Past the `//`; classify by the next char.
        self.pos += 2;
        let kind = match self.peek() {
            Some(b'/') if self.peek_at(1) != Some(b'/') => {
                self.pos += 1;
                CommentKind::OuterDoc
            }
            Some(b'!') => {
                self.pos += 1;
                CommentKind::InnerDoc
            }
            _ => CommentKind::Line,
        };
        let text_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        out.comments.push(Comment {
            kind,
            line: start_line,
            text: String::from_utf8_lossy(&self.src[text_start..self.pos]).into_owned(),
        });
    }

    fn block_comment(&mut self, out: &mut LexFile) -> Result<(), LexError> {
        let start_line = self.line;
        self.pos += 2; // past `/*`
        let text_start = self.pos;
        let mut depth = 1usize;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated block comment")),
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                Some(b'*') if self.peek_at(1) == Some(b'/') => {
                    depth -= 1;
                    if depth == 0 {
                        let text =
                            String::from_utf8_lossy(&self.src[text_start..self.pos]).into_owned();
                        self.pos += 2;
                        out.comments.push(Comment {
                            kind: CommentKind::Block,
                            line: start_line,
                            text,
                        });
                        return Ok(());
                    }
                    self.pos += 2;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Consumes a `"..."` body (opening quote already consumed).
    fn string_body(&mut self) -> Result<String, LexError> {
        let start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string literal")),
                Some(b'"') => {
                    return Ok(String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned());
                }
                Some(b'\\') => {
                    // Skip whatever is escaped (covers \" and \\; multi-char
                    // escapes like \u{..} contain no bare quote).
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a raw string `r##"..."##` with `hashes` hashes (the `r`,
    /// hashes and opening quote already consumed).
    fn raw_string_body(&mut self, hashes: usize) -> Result<String, LexError> {
        let start = self.pos;
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated raw string literal")),
                Some(b'"') => {
                    let tail = &self.src[self.pos..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                        let text =
                            String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned();
                        self.pos += hashes;
                        return Ok(text);
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a char/byte literal body (opening `'` already consumed).
    fn char_body(&mut self) -> Result<(), LexError> {
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated character literal")),
                Some(b'\'') => return Ok(()),
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self, out: &mut LexFile) {
        let line = self.line;
        let start = self.pos;
        let mut radix = 10u32;
        if self.peek() == Some(b'0') {
            match self.peek_at(1) {
                Some(b'x') | Some(b'X') => {
                    radix = 16;
                    self.pos += 2;
                }
                Some(b'o') | Some(b'O') => {
                    radix = 8;
                    self.pos += 2;
                }
                Some(b'b') | Some(b'B') => {
                    radix = 2;
                    self.pos += 2;
                }
                _ => {}
            }
        }
        let digits_start = self.pos;
        let is_digit = |b: u8| -> bool {
            match radix {
                16 => b.is_ascii_hexdigit(),
                _ => b.is_ascii_digit(),
            }
        };
        let mut float = false;
        while let Some(b) = self.peek() {
            if is_digit(b) || b == b'_' {
                self.pos += 1;
            } else if radix == 10
                && b == b'.'
                && self.peek_at(1).is_some_and(|n| n.is_ascii_digit())
            {
                float = true;
                self.pos += 1;
            } else if radix == 10
                && (b == b'e' || b == b'E')
                && self
                    .peek_at(1)
                    .is_some_and(|n| n.is_ascii_digit() || n == b'+' || n == b'-')
            {
                float = true;
                self.pos += 2;
            } else {
                break;
            }
        }
        let digits_end = self.pos;
        // Suffix (u8, usize, f32, …): consume trailing ident chars.
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                // A decimal suffix starting with f marks a float (1f32).
                if radix == 10 && (b == b'f') {
                    float = true;
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        if float {
            out.tokens.push(Token {
                tok: Tok::Float,
                line,
            });
            return;
        }
        let digits: String = self.src[digits_start..digits_end]
            .iter()
            .filter(|&&b| b != b'_')
            .map(|&b| b as char)
            .collect();
        let value = u128::from_str_radix(&digits, radix).unwrap_or(u128::MAX);
        let _ = start;
        out.tokens.push(Token {
            tok: Tok::Int(value),
            line,
        });
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

/// Lexes one Rust source file into code tokens plus comments.
pub fn lex(src: &str) -> Result<LexFile, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = LexFile::default();
    while let Some(b) = lx.peek() {
        let line = lx.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.bump();
            }
            b'/' if lx.peek_at(1) == Some(b'/') => lx.line_comment(&mut out),
            b'/' if lx.peek_at(1) == Some(b'*') => lx.block_comment(&mut out)?,
            b'"' => {
                lx.pos += 1;
                let text = lx.string_body()?;
                out.tokens.push(Token {
                    tok: Tok::Str(text),
                    line,
                });
            }
            b'\'' => {
                // Lifetime (`'a` not followed by a closing quote) vs char.
                let is_lifetime = lx
                    .peek_at(1)
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                    && lx.peek_at(2) != Some(b'\'');
                lx.pos += 1;
                if is_lifetime {
                    lx.ident();
                    out.tokens.push(Token {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    lx.char_body()?;
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                }
            }
            b'0'..=b'9' => lx.number(&mut out),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let word = lx.ident();
                // String-literal prefixes: r"", r#""#, b"", br#""#, b''.
                match (word.as_str(), lx.peek()) {
                    ("r" | "br" | "rb", Some(b'"' | b'#')) => {
                        let mut hashes = 0usize;
                        while lx.peek() == Some(b'#') {
                            hashes += 1;
                            lx.pos += 1;
                        }
                        if lx.peek() == Some(b'"') {
                            lx.pos += 1;
                            let text = lx.raw_string_body(hashes)?;
                            out.tokens.push(Token {
                                tok: Tok::Str(text),
                                line,
                            });
                        } else {
                            // `r#ident` (raw identifier): hashes consumed,
                            // lex the identifier itself.
                            let raw = lx.ident();
                            out.tokens.push(Token {
                                tok: Tok::Ident(raw),
                                line,
                            });
                        }
                    }
                    ("b", Some(b'"')) => {
                        lx.pos += 1;
                        let text = lx.string_body()?;
                        out.tokens.push(Token {
                            tok: Tok::Str(text),
                            line,
                        });
                    }
                    ("b", Some(b'\'')) => {
                        lx.pos += 1;
                        lx.char_body()?;
                        out.tokens.push(Token {
                            tok: Tok::Char,
                            line,
                        });
                    }
                    _ => out.tokens.push(Token {
                        tok: Tok::Ident(word),
                        line,
                    }),
                }
            }
            other => {
                lx.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(other as char),
                    line,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(file: &LexFile) -> Vec<&str> {
        file.tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let file = lex(concat!(
            "// call .unwrap() here\n",
            "let s = \"panic! inside a string\"; /* unwrap( */\n",
            "s.into_vec();\n",
        ))
        .unwrap();
        let ids = idents(&file);
        assert!(ids.contains(&"into_vec"));
        assert!(!ids.contains(&"unwrap"));
        assert!(!ids.contains(&"panic"));
        assert_eq!(file.comments.len(), 2);
        assert_eq!(file.comments[0].line, 1);
        assert!(file.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn doc_comment_kinds() {
        let file = lex("//! inner\n/// outer\n// plain\nfn x() {}\n").unwrap();
        let kinds: Vec<CommentKind> = file.comments.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommentKind::InnerDoc,
                CommentKind::OuterDoc,
                CommentKind::Line
            ]
        );
    }

    #[test]
    fn numeric_literals_decode() {
        let file = lex("const A: u8 = 0x2A; const B: u32 = 1_000; let f = 1.5e3;").unwrap();
        let ints: Vec<u128> = file
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, vec![0x2A, 1000]);
        assert!(file.tokens.iter().any(|t| t.tok == Tok::Float));
    }

    #[test]
    fn byte_and_raw_strings() {
        let file = lex(r###"const M: [u8; 8] = *b"PMLSHSNP"; let r = r#"raw "txt""#;"###).unwrap();
        let strs: Vec<&str> = file
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["PMLSHSNP", "raw \"txt\""]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let file = lex("fn f<'a>(x: &'a str) -> char { 'x' }").unwrap();
        let lifetimes = file
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = file.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let file = lex("a\n\nb // c\nd\n").unwrap();
        let lines: Vec<u32> = file.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 3, 4]);
        assert_eq!(file.comments[0].line, 3);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("let s = \"oops").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
