//! Pass 3 — protocol-constant consistency.
//!
//! The wire and on-disk formats are *specified* in `docs/PROTOCOL.md` and
//! `docs/ARCHITECTURE.md` and *implemented* in `crates/engine/src/frame.rs`,
//! `crates/engine/src/server.rs` and `crates/persist`. Nothing ties the two
//! together — a renumbered opcode or a changed frame-cap formula ships with
//! stale docs and breaks every external client written against them.
//!
//! This pass extracts the named constants from the **source** (the single
//! source of truth) and verifies every citation in the docs matches:
//!
//! * binary opcodes/statuses (`OP_*`, `STATUS_*`) vs the PROTOCOL.md
//!   byte tables (`| 0xNN | NAME | ...` rows);
//! * the binary frame cap (`frame_cap`) and the text line cap
//!   (`line_cap = ...`) vs every `max(F, B + M·d)` formula cited in
//!   either doc;
//! * the `.pmlsh` magic, format version and section ids vs
//!   ARCHITECTURE.md's layout table, and the shard-manifest magic;
//! * the `BATCH` verb's cap (`BATCH_MAX_OPS`) and reply shapes
//!   (`BATCH_OK_PREFIX`, `BATCH_FAIL_PREFIX`) vs the PROTOCOL.md prose
//!   that external clients parse replies by.
//!
//! Values are compared, not prose: editing either side without the other
//! fails the `lint` CI job.

use crate::lexer::{lex, LexFile, Tok};
use crate::{Finding, Pass};

/// The constants extracted from the source of truth.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoConsts {
    /// `(name, value)` for each opcode/status in `frame.rs`.
    pub opcodes: Vec<(&'static str, u128)>,
    /// `frame_cap` as `(floor, base, per_dim)` — `max(floor, base + per_dim·d)`.
    pub frame_cap: (u128, u128, u128),
    /// `line_cap` as `(floor, base, per_dim)`.
    pub line_cap: (u128, u128, u128),
    /// `.pmlsh` snapshot magic bytes, as text.
    pub magic: String,
    /// `.pmlsh` format version.
    pub format_version: u128,
    /// `(section name, id)` in file order.
    pub sections: Vec<(&'static str, u128)>,
    /// Sharded-manifest magic bytes, as text.
    pub manifest_magic: String,
    /// Most op lines one `BATCH` request may carry (`BATCH_MAX_OPS`).
    pub batch_max_ops: u128,
    /// Verbatim prefix of a successful `BATCH` reply (`BATCH_OK_PREFIX`).
    pub batch_ok_prefix: String,
    /// Verbatim prefix of a per-op failure line (`BATCH_FAIL_PREFIX`).
    pub batch_fail_prefix: String,
}

/// The doc table names each opcode/status row is keyed by, and the source
/// constant it must match. Request and reply tables share a namespace —
/// the names are disjoint.
const OPCODE_NAMES: [(&str, &str); 5] = [
    ("QUERY", "OP_QUERY"),
    ("PING", "OP_PING"),
    ("OK", "STATUS_OK"),
    ("ERR", "STATUS_ERR"),
    ("PONG", "STATUS_PONG"),
];

/// ARCHITECTURE.md layout-table section names → `SEC_*` constants.
const SECTION_NAMES: [(&str, &str); 8] = [
    ("HEADER", "SEC_HEADER"),
    ("PROJ", "SEC_PROJ"),
    ("DATA", "SEC_DATA"),
    ("PROJ_POINTS", "SEC_PROJ_POINTS"),
    ("PIVOTS", "SEC_PIVOTS"),
    ("NODES", "SEC_NODES"),
    ("IDMAPS", "SEC_IDMAPS"),
    ("ECDF", "SEC_ECDF"),
];

/// Value of `const NAME: ... = <int>;`.
fn const_int(file: &LexFile, name: &str) -> Option<u128> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !matches!(&toks[i].tok, Tok::Ident(w) if w == "const") {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(n)) if n == name) {
            continue;
        }
        // First integer between the `=` and the `;`.
        let mut j = i + 2;
        while j < toks.len() && toks[j].tok != Tok::Punct('=') {
            j += 1;
        }
        while j < toks.len() && toks[j].tok != Tok::Punct(';') {
            if let Tok::Int(v) = toks[j].tok {
                return Some(v);
            }
            j += 1;
        }
        return None;
    }
    None
}

/// String content of `const NAME: ... = ..."TEXT"...;`.
fn const_str(file: &LexFile, name: &str) -> Option<String> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !matches!(&toks[i].tok, Tok::Ident(w) if w == "const") {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(n)) if n == name) {
            continue;
        }
        // Skip the type annotation first: `[u8; 8]` contains a `;`.
        let mut j = i + 2;
        while j < toks.len() && toks[j].tok != Tok::Punct('=') {
            j += 1;
        }
        while j < toks.len() && toks[j].tok != Tok::Punct(';') {
            if let Tok::Str(s) = &toks[j].tok {
                return Some(s.clone());
            }
            j += 1;
        }
        return None;
    }
    None
}

/// The integer literals in the body of `fn NAME`, in source order.
fn fn_body_ints(file: &LexFile, name: &str) -> Option<Vec<u128>> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !matches!(&toks[i].tok, Tok::Ident(w) if w == "fn") {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(n)) if n == name) {
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && toks[j].tok != Tok::Punct('{') {
            j += 1;
        }
        let mut depth = 0i32;
        let mut ints = Vec::new();
        while j < toks.len() {
            match toks[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(ints);
                    }
                }
                Tok::Int(v) => ints.push(v),
                _ => {}
            }
            j += 1;
        }
        return Some(ints);
    }
    None
}

/// The integer literals of the first `NAME = ...;` assignment.
fn assign_ints(file: &LexFile, name: &str) -> Option<Vec<u128>> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !matches!(&toks[i].tok, Tok::Ident(w) if w == name) {
            continue;
        }
        // `name =` but not `name ==`.
        if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('='))
            || toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('='))
        {
            continue;
        }
        let mut ints = Vec::new();
        let mut j = i + 2;
        while j < toks.len() && toks[j].tok != Tok::Punct(';') {
            if let Tok::Int(v) = toks[j].tok {
                ints.push(v);
            }
            j += 1;
        }
        return Some(ints);
    }
    None
}

fn triple(
    ints: &[u128],
    what: &str,
    path: &str,
    findings: &mut Vec<Finding>,
) -> Option<(u128, u128, u128)> {
    // Written as `(BASE + MULT * dim).max(FLOOR)` in both sources.
    if let [base, mult, floor] = ints {
        Some((*floor, *base, *mult))
    } else {
        findings.push(Finding::new(
            path,
            0,
            Pass::Protocol,
            format!(
                "{what} no longer has the `(base + mult * d).max(floor)` shape the lint \
                 extracts ({ints:?}); teach crates/lint/src/protocol.rs the new shape"
            ),
        ));
        None
    }
}

/// Extracts [`ProtoConsts`] from the four source files' contents. Missing
/// constants are findings — renaming a wire constant without updating the
/// lint is itself drift.
pub fn extract(
    frame_src: &str,
    server_src: &str,
    format_src: &str,
    manifest_src: &str,
    findings: &mut Vec<Finding>,
) -> Option<ProtoConsts> {
    let mut lex_ok = |src: &str, path: &str| match lex(src) {
        Ok(f) => Some(f),
        Err(e) => {
            findings.push(Finding::new(
                path,
                e.line,
                Pass::Protocol,
                format!("lex error: {}", e.message),
            ));
            None
        }
    };
    let frame = lex_ok(frame_src, "crates/engine/src/frame.rs")?;
    let server = lex_ok(server_src, "crates/engine/src/server.rs")?;
    let format = lex_ok(format_src, "crates/persist/src/format.rs")?;
    let manifest = lex_ok(manifest_src, "crates/persist/src/manifest.rs")?;

    let before = findings.len();
    let mut opcodes = Vec::new();
    for (_, const_name) in OPCODE_NAMES {
        match const_int(&frame, const_name) {
            Some(v) => opcodes.push((const_name, v)),
            None => findings.push(Finding::new(
                "crates/engine/src/frame.rs",
                0,
                Pass::Protocol,
                format!("wire constant `{const_name}` not found (moved or renamed?)"),
            )),
        }
    }
    let frame_cap = fn_body_ints(&frame, "frame_cap")
        .and_then(|ints| triple(&ints, "`frame_cap`", "crates/engine/src/frame.rs", findings));
    if fn_body_ints(&frame, "frame_cap").is_none() {
        findings.push(Finding::new(
            "crates/engine/src/frame.rs",
            0,
            Pass::Protocol,
            "fn `frame_cap` not found (moved or renamed?)",
        ));
    }
    let line_cap = assign_ints(&server, "line_cap")
        .and_then(|ints| triple(&ints, "`line_cap`", "crates/engine/src/server.rs", findings));
    if assign_ints(&server, "line_cap").is_none() {
        findings.push(Finding::new(
            "crates/engine/src/server.rs",
            0,
            Pass::Protocol,
            "`line_cap = ...` assignment not found (moved or renamed?)",
        ));
    }
    let magic = const_str(&format, "MAGIC");
    if magic.is_none() {
        findings.push(Finding::new(
            "crates/persist/src/format.rs",
            0,
            Pass::Protocol,
            "const `MAGIC` not found",
        ));
    }
    let format_version = const_int(&format, "FORMAT_VERSION");
    if format_version.is_none() {
        findings.push(Finding::new(
            "crates/persist/src/format.rs",
            0,
            Pass::Protocol,
            "const `FORMAT_VERSION` not found",
        ));
    }
    let mut sections = Vec::new();
    for (_, const_name) in SECTION_NAMES {
        match const_int(&format, const_name) {
            Some(v) => sections.push((const_name, v)),
            None => findings.push(Finding::new(
                "crates/persist/src/format.rs",
                0,
                Pass::Protocol,
                format!("section id `{const_name}` not found"),
            )),
        }
    }
    let manifest_magic = const_str(&manifest, "MANIFEST_MAGIC");
    if manifest_magic.is_none() {
        findings.push(Finding::new(
            "crates/persist/src/manifest.rs",
            0,
            Pass::Protocol,
            "const `MANIFEST_MAGIC` not found",
        ));
    }
    let batch_max_ops = const_int(&server, "BATCH_MAX_OPS");
    if batch_max_ops.is_none() {
        findings.push(Finding::new(
            "crates/engine/src/server.rs",
            0,
            Pass::Protocol,
            "const `BATCH_MAX_OPS` not found (moved or renamed?)",
        ));
    }
    let batch_ok_prefix = const_str(&server, "BATCH_OK_PREFIX");
    if batch_ok_prefix.is_none() {
        findings.push(Finding::new(
            "crates/engine/src/server.rs",
            0,
            Pass::Protocol,
            "const `BATCH_OK_PREFIX` not found (moved or renamed?)",
        ));
    }
    let batch_fail_prefix = const_str(&server, "BATCH_FAIL_PREFIX");
    if batch_fail_prefix.is_none() {
        findings.push(Finding::new(
            "crates/engine/src/server.rs",
            0,
            Pass::Protocol,
            "const `BATCH_FAIL_PREFIX` not found (moved or renamed?)",
        ));
    }
    if findings.len() != before {
        return None;
    }
    Some(ProtoConsts {
        opcodes,
        frame_cap: frame_cap?,
        line_cap: line_cap?,
        magic: magic?,
        format_version: format_version?,
        sections,
        manifest_magic: manifest_magic?,
        batch_max_ops: batch_max_ops?,
        batch_ok_prefix: batch_ok_prefix?,
        batch_fail_prefix: batch_fail_prefix?,
    })
}

/// Parses `0xNN` / `NN` (the docs cite opcodes in hex, section ids in
/// decimal).
fn parse_doc_int(cell: &str) -> Option<u128> {
    let cell = cell.trim().trim_matches('`').trim();
    if let Some(hex) = cell.strip_prefix("0x") {
        u128::from_str_radix(hex, 16).ok()
    } else {
        cell.parse().ok()
    }
}

/// Markdown-table rows of the form `| <int> | <NAME> | ...` keyed by a
/// known name set: `(name, cited value, line)`.
fn doc_table_rows<'a>(doc: &str, names: &'a [(&'a str, &str)]) -> Vec<(&'a str, u128, u32)> {
    let mut rows = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        // `| a | b |` splits to ["", "a", "b", ""].
        if cells.len() < 4 {
            continue;
        }
        let Some(value) = parse_doc_int(cells[1]) else {
            continue;
        };
        let name_cell = cells[2].trim_matches('`');
        if let Some((name, _)) = names.iter().find(|(n, _)| *n == name_cell) {
            rows.push((*name, value, lineno as u32 + 1));
        }
    }
    rows
}

/// Every `max(F, B + M·d)` citation in `doc`: `(floor, base, mult, line)`.
fn doc_cap_formulas(doc: &str) -> Vec<(u128, u128, u128, u32)> {
    let mut out = Vec::new();
    for (lineno, line) in doc.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("max(") {
            rest = &rest[pos + 4..];
            // Expect `F, B + M·d)` with flexible spacing.
            let Some(close) = rest.find(')') else {
                continue;
            };
            let inner = &rest[..close];
            let Some((floor_s, tail)) = inner.split_once(',') else {
                continue;
            };
            let Some((base_s, mult_s)) = tail.split_once('+') else {
                continue;
            };
            let Some(mult_s) = mult_s.trim().strip_suffix("·d") else {
                continue;
            };
            let (Ok(floor), Ok(base), Ok(mult)) = (
                floor_s.trim().parse::<u128>(),
                base_s.trim().parse::<u128>(),
                mult_s.trim().parse::<u128>(),
            ) else {
                continue;
            };
            out.push((floor, base, mult, lineno as u32 + 1));
        }
    }
    out
}

/// Checks the two docs against the extracted constants.
pub fn check_docs(
    consts: &ProtoConsts,
    protocol_md: &str,
    architecture_md: &str,
    findings: &mut Vec<Finding>,
) {
    const PROTO: &str = "docs/PROTOCOL.md";
    const ARCH: &str = "docs/ARCHITECTURE.md";

    // Opcode/status tables in PROTOCOL.md.
    let rows = doc_table_rows(protocol_md, &OPCODE_NAMES);
    for (doc_name, const_name) in OPCODE_NAMES {
        let expected = consts
            .opcodes
            .iter()
            .find(|(n, _)| *n == const_name)
            .map(|(_, v)| *v)
            .expect("extract() filled every opcode");
        let cited: Vec<&(&str, u128, u32)> =
            rows.iter().filter(|(n, _, _)| *n == doc_name).collect();
        if cited.is_empty() {
            findings.push(Finding::new(
                PROTO,
                0,
                Pass::Protocol,
                format!("binary-protocol table row for `{doc_name}` ({const_name}) is missing"),
            ));
        }
        for (_, value, line) in cited {
            if *value != expected {
                findings.push(Finding::new(
                    PROTO,
                    *line,
                    Pass::Protocol,
                    format!(
                        "`{doc_name}` cited as 0x{value:02x} but {const_name} = 0x{expected:02x} \
                         in crates/engine/src/frame.rs"
                    ),
                ));
            }
        }
    }

    // Cap formulas: every citation in either doc must match frame_cap or
    // line_cap, and PROTOCOL.md must cite both at least once.
    let expected = [consts.frame_cap, consts.line_cap];
    let mut seen = [false; 2];
    for (path, doc) in [(PROTO, protocol_md), (ARCH, architecture_md)] {
        for (floor, base, mult, line) in doc_cap_formulas(doc) {
            match expected.iter().position(|&e| e == (floor, base, mult)) {
                Some(idx) => {
                    if path == PROTO {
                        seen[idx] = true;
                    }
                }
                None => findings.push(Finding::new(
                    path,
                    line,
                    Pass::Protocol,
                    format!(
                        "cap formula `max({floor}, {base} + {mult}·d)` matches neither \
                         frame_cap `max({}, {} + {}·d)` nor line_cap `max({}, {} + {}·d)`",
                        consts.frame_cap.0,
                        consts.frame_cap.1,
                        consts.frame_cap.2,
                        consts.line_cap.0,
                        consts.line_cap.1,
                        consts.line_cap.2,
                    ),
                )),
            }
        }
    }
    for (idx, what) in [(0usize, "binary frame cap"), (1, "text line cap")] {
        if !seen[idx] {
            findings.push(Finding::new(
                PROTO,
                0,
                Pass::Protocol,
                format!("the {what} formula is no longer cited in docs/PROTOCOL.md"),
            ));
        }
    }

    // Magic strings and format version.
    for (path, doc) in [(PROTO, protocol_md), (ARCH, architecture_md)] {
        if !doc.contains(&consts.magic) {
            findings.push(Finding::new(
                path,
                0,
                Pass::Protocol,
                format!("snapshot magic `{}` is not cited", consts.magic),
            ));
        }
    }
    if !architecture_md.contains(&consts.manifest_magic) {
        findings.push(Finding::new(
            ARCH,
            0,
            Pass::Protocol,
            format!(
                "sharded-manifest magic `{}` is not cited in docs/ARCHITECTURE.md",
                consts.manifest_magic
            ),
        ));
    }
    let version_phrase = format!("format version {}", consts.format_version);
    if !architecture_md.contains(&version_phrase) {
        findings.push(Finding::new(
            ARCH,
            0,
            Pass::Protocol,
            format!("`.pmlsh` layout section does not cite `{version_phrase}`"),
        ));
    }

    // The BATCH verb's cap and reply shapes: external clients parse the
    // `OK applied=` summary and count `FAIL ` lines by these strings, so
    // PROTOCOL.md must cite all three verbatim.
    let cap_phrase = format!("at most {} ops", consts.batch_max_ops);
    if !protocol_md.contains(&cap_phrase) {
        findings.push(Finding::new(
            PROTO,
            0,
            Pass::Protocol,
            format!(
                "the BATCH op cap is no longer cited as `{cap_phrase}` \
                 (BATCH_MAX_OPS in crates/engine/src/server.rs)"
            ),
        ));
    }
    for (what, prefix) in [
        ("success-reply prefix", &consts.batch_ok_prefix),
        ("failure-line prefix", &consts.batch_fail_prefix),
    ] {
        if !protocol_md.contains(prefix.as_str()) {
            findings.push(Finding::new(
                PROTO,
                0,
                Pass::Protocol,
                format!("the BATCH {what} `{prefix}` is not cited in docs/PROTOCOL.md"),
            ));
        }
    }

    // Section-id table in ARCHITECTURE.md.
    let rows = doc_table_rows(architecture_md, &SECTION_NAMES);
    for (doc_name, const_name) in SECTION_NAMES {
        let expected = consts
            .sections
            .iter()
            .find(|(n, _)| *n == const_name)
            .map(|(_, v)| *v)
            .expect("extract() filled every section");
        let cited: Vec<&(&str, u128, u32)> =
            rows.iter().filter(|(n, _, _)| *n == doc_name).collect();
        if cited.is_empty() {
            findings.push(Finding::new(
                ARCH,
                0,
                Pass::Protocol,
                format!("`.pmlsh` layout table row for `{doc_name}` ({const_name}) is missing"),
            ));
        }
        for (_, value, line) in cited {
            if *value != expected {
                findings.push(Finding::new(
                    ARCH,
                    *line,
                    Pass::Protocol,
                    format!(
                        "section `{doc_name}` cited with id {value} but {const_name} = {expected} \
                         in crates/persist/src/format.rs"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: &str = concat!(
        "pub const OP_QUERY: u8 = 1;\n",
        "pub const OP_PING: u8 = 2;\n",
        "pub const STATUS_OK: u8 = 0;\n",
        "pub const STATUS_ERR: u8 = 1;\n",
        "pub const STATUS_PONG: u8 = 2;\n",
        "pub fn frame_cap(dim: usize) -> usize { (64 + 8 * dim).max(512) }\n",
    );
    const SERVER: &str = concat!(
        "const BATCH_MAX_OPS: usize = 4096;\n",
        "const BATCH_OK_PREFIX: &str = \"OK applied=\";\n",
        "const BATCH_FAIL_PREFIX: &str = \"FAIL \";\n",
        "fn recompute(&mut self) { self.line_cap = (64 + 32 * self.dim).max(512); }\n",
    );
    const FORMAT: &str = concat!(
        "pub const MAGIC: [u8; 8] = *b\"PMLSHSNP\";\n",
        "pub const FORMAT_VERSION: u32 = 1;\n",
        "const SEC_HEADER: u32 = 1;\nconst SEC_PROJ: u32 = 2;\nconst SEC_DATA: u32 = 3;\n",
        "const SEC_PROJ_POINTS: u32 = 4;\nconst SEC_PIVOTS: u32 = 5;\nconst SEC_NODES: u32 = 6;\n",
        "const SEC_IDMAPS: u32 = 7;\nconst SEC_ECDF: u32 = 8;\n",
    );
    const MANIFEST: &str = "pub const MANIFEST_MAGIC: [u8; 8] = *b\"PMLSHMAN\";\n";

    fn consts() -> ProtoConsts {
        let mut findings = Vec::new();
        let c = extract(FRAME, SERVER, FORMAT, MANIFEST, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        c.unwrap()
    }

    fn good_protocol() -> String {
        concat!(
            "| opcode | name | layout |\n|---|---|---|\n",
            "| `0x01` | QUERY | k, d, components |\n| `0x02` | PING | empty |\n",
            "| `0x00` | OK | count, pairs |\n| `0x01` | ERR | utf-8 |\n| `0x02` | PONG | empty |\n",
            "The frame cap is `max(512, 64 + 8·d)` bytes.\n",
            "The line cap is `max(512, 64 + 32·d)` bytes.\n",
            "Snapshots are detected by magic `PMLSHSNP`.\n",
            "`BATCH <count>` accepts at most 4096 ops; the reply starts\n",
            "`OK applied=` and is followed by `FAIL ` lines.\n",
        )
        .to_string()
    }

    fn good_architecture() -> String {
        concat!(
            "The file layout (format version 1): magic \"PMLSHSNP\",\n",
            "manifest magic \"PMLSHMAN\".\n",
            "| id | section | payload |\n|---|---|---|\n",
            "| 1 | HEADER | params |\n| 2 | PROJ | matrix |\n| 3 | DATA | rows |\n",
            "| 4 | PROJ_POINTS | proj |\n| 5 | PIVOTS | pivots |\n| 6 | NODES | arena |\n",
            "| 7 | IDMAPS | maps |\n| 8 | ECDF | samples |\n",
        )
        .to_string()
    }

    #[test]
    fn extraction_reads_the_source_shapes() {
        let c = consts();
        assert_eq!(c.frame_cap, (512, 64, 8));
        assert_eq!(c.line_cap, (512, 64, 32));
        assert_eq!(c.magic, "PMLSHSNP");
        assert_eq!(c.manifest_magic, "PMLSHMAN");
        assert_eq!(c.sections.len(), 8);
        assert_eq!(c.opcodes[0], ("OP_QUERY", 1));
        assert_eq!(c.batch_max_ops, 4096);
        assert_eq!(c.batch_ok_prefix, "OK applied=");
        assert_eq!(c.batch_fail_prefix, "FAIL ");
    }

    #[test]
    fn consistent_docs_pass() {
        let mut findings = Vec::new();
        check_docs(
            &consts(),
            &good_protocol(),
            &good_architecture(),
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn edited_opcode_is_caught() {
        let doc = good_protocol().replace("| `0x01` | QUERY |", "| `0x03` | QUERY |");
        let mut findings = Vec::new();
        check_docs(&consts(), &doc, &good_architecture(), &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("QUERY"));
    }

    #[test]
    fn missing_table_row_is_caught() {
        let doc = good_protocol().replace("| `0x02` | PING | empty |\n", "");
        let mut findings = Vec::new();
        check_docs(&consts(), &doc, &good_architecture(), &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("PING"));
    }

    #[test]
    fn edited_cap_formula_is_caught() {
        let doc = good_protocol().replace("64 + 8·d", "64 + 16·d");
        let mut findings = Vec::new();
        check_docs(&consts(), &doc, &good_architecture(), &mut findings);
        // One for the mismatching citation, one for frame cap no longer cited.
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn edited_section_id_is_caught() {
        let doc = good_architecture().replace("| 6 | NODES |", "| 9 | NODES |");
        let mut findings = Vec::new();
        check_docs(&consts(), &good_protocol(), &doc, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("NODES"));
    }

    #[test]
    fn missing_magic_is_caught() {
        let doc = good_architecture().replace("PMLSHMAN", "PMLSHXXX");
        let mut findings = Vec::new();
        check_docs(&consts(), &good_protocol(), &doc, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("PMLSHMAN"));
    }

    #[test]
    fn changed_source_constant_fails_against_stale_docs() {
        // Simulate the *source* changing while docs stay stale.
        let frame = FRAME.replace("OP_PING: u8 = 2", "OP_PING: u8 = 7");
        let mut findings = Vec::new();
        let c = extract(&frame, SERVER, FORMAT, MANIFEST, &mut findings).unwrap();
        check_docs(&c, &good_protocol(), &good_architecture(), &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("PING"));
    }

    #[test]
    fn missing_batch_citations_are_caught() {
        // Strip the whole BATCH paragraph from the doc: the cap phrase
        // and both reply prefixes go missing, one finding each.
        let doc = good_protocol()
            .replace(
                "`BATCH <count>` accepts at most 4096 ops; the reply starts\n",
                "",
            )
            .replace("`OK applied=` and is followed by `FAIL ` lines.\n", "");
        let mut findings = Vec::new();
        check_docs(&consts(), &doc, &good_architecture(), &mut findings);
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.message.contains("at most 4096 ops")));
        assert!(findings.iter().any(|f| f.message.contains("OK applied=")));
        assert!(findings.iter().any(|f| f.message.contains("FAIL ")));
    }

    #[test]
    fn raised_batch_cap_fails_against_stale_docs() {
        // The source raises the cap; the doc still says 4096.
        let server = SERVER.replace("BATCH_MAX_OPS: usize = 4096", "BATCH_MAX_OPS: usize = 8192");
        let mut findings = Vec::new();
        let c = extract(FRAME, &server, FORMAT, MANIFEST, &mut findings).unwrap();
        check_docs(&c, &good_protocol(), &good_architecture(), &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("at most 8192 ops"));
    }

    #[test]
    fn renamed_batch_constant_is_extraction_drift() {
        let server = SERVER.replace("BATCH_OK_PREFIX", "BATCH_SUMMARY_PREFIX");
        let mut findings = Vec::new();
        assert!(extract(FRAME, &server, FORMAT, MANIFEST, &mut findings).is_none());
        assert!(findings
            .iter()
            .any(|f| f.message.contains("BATCH_OK_PREFIX")));
    }

    #[test]
    fn renamed_constant_is_extraction_drift() {
        let frame = FRAME.replace("OP_QUERY", "OPCODE_QUERY");
        let mut findings = Vec::new();
        assert!(extract(&frame, SERVER, FORMAT, MANIFEST, &mut findings).is_none());
        assert!(!findings.is_empty());
    }
}
