//! pm-lsh-lint — workspace static analysis for PM-LSH.
//!
//! Four token-level passes over the workspace's Rust sources, built on a
//! small comment- and string-aware lexer (no external crates — nothing
//! resolves offline, so like `crates/proptest` this tool is std-only):
//!
//! 1. **unsafe-audit** — every `unsafe` site needs an adjacent `// SAFETY:`
//!    comment (or `# Safety` rustdoc section for `unsafe fn`); the full
//!    site list is rendered into the checked-in `docs/UNSAFE.md` ledger
//!    and compared for drift.
//! 2. **hot-path** — modules marked `//! lint: hot-path` ban panic,
//!    allocation, blocking and I/O constructs outside `#[cfg(test)]`.
//! 3. **protocol** — wire and snapshot constants in the source must match
//!    every citation in `docs/PROTOCOL.md` / `docs/ARCHITECTURE.md`.
//! 4. **ffi-audit** — calls to locally-declared `extern "C"` functions
//!    must not discard their return value.
//!
//! False positives use the scoped escape hatch
//! `// lint: allow(<pass>) -- <reason>`; the reason is mandatory.
//!
//! Entry point: [`run_check`]. The `pm-lsh-lint` binary wraps it as
//! `cargo run -p pm-lsh-lint -- check [--fix-ledger]`.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub mod annot;
pub mod ffi_audit;
pub mod hotpath;
pub mod ledger;
pub mod lexer;
pub mod protocol;
pub mod unsafe_audit;

/// The lint passes (plus the annotation grammar itself, whose parse errors
/// are findings too).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    UnsafeAudit,
    HotPath,
    Protocol,
    FfiAudit,
    Annotation,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::UnsafeAudit => "unsafe-audit",
            Pass::HotPath => "hot-path",
            Pass::Protocol => "protocol",
            Pass::FfiAudit => "ffi-audit",
            Pass::Annotation => "annotation",
        })
    }
}

/// One reported problem.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line; 0 when the finding is about the file as a whole.
    pub line: u32,
    pub pass: Pass,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, pass: Pass, message: impl Into<String>) -> Self {
        Finding {
            file: file.to_string(),
            line,
            pass,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

/// The result of a full workspace check.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Files scanned (for the summary line).
    pub files_scanned: usize,
    /// Unsafe sites collected into the ledger.
    pub unsafe_sites: usize,
    /// `--fix-ledger` rewrote `docs/UNSAFE.md` this run.
    pub ledger_written: bool,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Walks upward from `start` to the workspace root (the `Cargo.toml`
/// containing `[workspace]`).
pub fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Directory names never scanned: build output, VCS metadata, and the
/// lint's own known-bad test fixtures.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// All `.rs` files under `root`, workspace-relative, sorted.
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_path_buf());
                }
            }
        }
    }
    files.sort();
    files
}

fn rel_str(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The four files the protocol pass extracts its constants from, and the
/// two docs it checks them against.
const PROTO_SOURCES: [&str; 4] = [
    "crates/engine/src/frame.rs",
    "crates/engine/src/server.rs",
    "crates/persist/src/format.rs",
    "crates/persist/src/manifest.rs",
];
const PROTO_DOCS: [&str; 2] = ["docs/PROTOCOL.md", "docs/ARCHITECTURE.md"];

/// Path of the generated unsafe ledger, workspace-relative.
pub const LEDGER_PATH: &str = "docs/UNSAFE.md";

/// Runs all passes over the workspace at `root`. With `fix_ledger`, an
/// out-of-date `docs/UNSAFE.md` is rewritten instead of reported.
pub fn run_check(root: &Path, fix_ledger: bool) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut entries: Vec<ledger::LedgerEntry> = Vec::new();

    for rel in workspace_rs_files(root) {
        let path = rel_str(&rel);
        let src = fs::read_to_string(root.join(&rel))?;
        report.files_scanned += 1;
        let file = match lexer::lex(&src) {
            Ok(f) => f,
            Err(e) => {
                report.findings.push(Finding::new(
                    &path,
                    e.line,
                    Pass::Annotation,
                    format!("lex error: {}", e.message),
                ));
                continue;
            }
        };
        let ann = annot::parse(&file, &path, &mut report.findings);
        let sites = unsafe_audit::check(&file, &path, &ann, &mut report.findings);
        entries.extend(sites.into_iter().map(|site| ledger::LedgerEntry {
            path: path.clone(),
            site,
        }));
        if ann.hot_path {
            hotpath::check(&file, &path, &ann, &mut report.findings);
        }
        ffi_audit::check(&file, &path, &ann, &mut report.findings);
    }

    // Protocol-constant consistency.
    let mut proto_srcs = Vec::new();
    for p in PROTO_SOURCES.iter().chain(PROTO_DOCS.iter()) {
        match fs::read_to_string(root.join(p)) {
            Ok(text) => proto_srcs.push(text),
            Err(_) => {
                report.findings.push(Finding::new(
                    p,
                    0,
                    Pass::Protocol,
                    "file missing — the protocol pass extracts wire constants from it",
                ));
            }
        }
    }
    if let [frame, server, format, manifest, protocol_md, architecture_md] = proto_srcs.as_slice() {
        if let Some(consts) =
            protocol::extract(frame, server, format, manifest, &mut report.findings)
        {
            protocol::check_docs(&consts, protocol_md, architecture_md, &mut report.findings);
        }
    }

    // Ledger drift.
    report.unsafe_sites = entries.len();
    let rendered = ledger::render(&mut entries);
    let ledger_path = root.join(LEDGER_PATH);
    let on_disk = fs::read_to_string(&ledger_path).unwrap_or_default();
    if on_disk != rendered {
        if fix_ledger {
            fs::write(&ledger_path, &rendered)?;
            report.ledger_written = true;
        } else {
            report.findings.push(Finding::new(
                LEDGER_PATH,
                0,
                Pass::UnsafeAudit,
                "unsafe ledger is out of date — regenerate with \
                 `cargo run -p pm-lsh-lint -- check --fix-ledger`",
            ));
        }
    }

    report.findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.message.cmp(&b.message))
    });
    Ok(report)
}
