//! Pass 1 — unsafe hygiene.
//!
//! Every `unsafe` block, fn, impl or trait must carry an adjacent
//! justification:
//!
//! * an `unsafe` **block/impl/trait** needs a `// SAFETY:` line comment on
//!   the same line or immediately above it (attribute lines and further
//!   comment lines in between are allowed — the dispatch-match idiom puts
//!   a `#[cfg]` between the comment and the arm);
//! * an `unsafe fn` may instead document its contract with a `# Safety`
//!   section in its doc comment (the rustdoc convention callers actually
//!   read).
//!
//! The pass also *collects* every site, justified or not, so the ledger in
//! `docs/UNSAFE.md` can be regenerated and checked for drift: an unsafe
//! block cannot move, appear or vanish without the checked-in ledger
//! changing in the same commit.

use crate::annot::Annotations;
use crate::lexer::{Comment, CommentKind, LexFile, Tok};
use crate::{Finding, Pass};

/// What kind of unsafe site a token turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SiteKind {
    /// `unsafe { ... }`
    Block,
    /// `unsafe fn ...`
    Fn,
    /// `unsafe impl ...`
    Impl,
    /// `unsafe trait ...`
    Trait,
}

impl SiteKind {
    /// The ledger's short label.
    pub fn label(self) -> &'static str {
        match self {
            SiteKind::Block => "block",
            SiteKind::Fn => "fn",
            SiteKind::Impl => "impl",
            SiteKind::Trait => "trait",
        }
    }
}

/// One `unsafe` occurrence, with its justification when one was found.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    pub line: u32,
    pub kind: SiteKind,
    /// The one-line justification for the ledger; `None` when the site is
    /// unjustified (which is also a finding).
    pub justification: Option<String>,
}

/// `true` if the line's tokens look like an attribute (`#[...]`) — these
/// may legitimately sit between a SAFETY comment and its code.
fn is_attribute_line(file: &LexFile, line: u32) -> bool {
    file.tokens
        .iter()
        .find(|t| t.line == line)
        .is_some_and(|t| t.tok == Tok::Punct('#'))
}

/// Takes the text after `SAFETY:` in `comment`; falls back to following
/// comment lines when the marker line itself is empty after the colon.
fn safety_text(file: &LexFile, comment: &Comment) -> String {
    let after = comment
        .text
        .split_once("SAFETY:")
        .map(|(_, rest)| rest.trim())
        .unwrap_or("");
    if !after.is_empty() {
        return after.to_string();
    }
    // `// SAFETY:` alone on its line: the prose starts on the next comment
    // line(s).
    let mut line = comment.line + 1;
    while !file.line_has_code(line) {
        if let Some(c) = file.comments_on(line).next() {
            let text = c.text.trim();
            if !text.is_empty() {
                return text.to_string();
            }
        } else {
            break;
        }
        line += 1;
    }
    "(empty justification)".to_string()
}

/// First non-empty doc line after a `# Safety` heading found at `heading`.
fn doc_safety_text(file: &LexFile, heading: u32) -> String {
    let mut line = heading + 1;
    while !file.line_has_code(line) || is_attribute_line(file, line) {
        if let Some(c) = file
            .comments_on(line)
            .find(|c| c.kind == CommentKind::OuterDoc)
        {
            let text = c.text.trim();
            if !text.is_empty() {
                return text.to_string();
            }
        }
        if line - heading > 64 {
            break;
        }
        line += 1;
    }
    "documented `# Safety` contract".to_string()
}

/// Scans upward from `site_line` for a justification. Comment and
/// attribute lines are crossed; the first *code* line ends the search.
fn find_justification(file: &LexFile, site_line: u32, kind: SiteKind) -> Option<String> {
    // Same-line comment first (e.g. a trailing `// SAFETY: ...`).
    for c in file.comments_on(site_line) {
        if c.kind != CommentKind::OuterDoc && c.text.contains("SAFETY:") {
            return Some(safety_text(file, c));
        }
    }
    let mut line = site_line;
    while line > 1 {
        line -= 1;
        for c in file.comments_on(line) {
            match c.kind {
                CommentKind::OuterDoc => {
                    if kind == SiteKind::Fn && c.text.trim().starts_with("# Safety") {
                        return Some(doc_safety_text(file, line));
                    }
                }
                _ => {
                    if c.text.contains("SAFETY:") {
                        return Some(safety_text(file, c));
                    }
                }
            }
        }
        if file.line_has_code(line) && !is_attribute_line(file, line) {
            return None;
        }
        // Blank and comment-only lines are crossed: doc blocks contain
        // blank doc lines, and a SAFETY comment one blank line up still
        // clearly refers to this site.
    }
    None
}

/// Runs the pass: collects every unsafe site in `file` and reports the
/// unjustified ones (unless covered by an `allow(unsafe-audit)` hatch,
/// whose reason then becomes the ledger justification).
pub fn check(
    file: &LexFile,
    path: &str,
    ann: &Annotations,
    findings: &mut Vec<Finding>,
) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for (i, token) in file.tokens.iter().enumerate() {
        if !matches!(&token.tok, Tok::Ident(word) if word == "unsafe") {
            continue;
        }
        let kind = match file.tokens.get(i + 1).map(|t| &t.tok) {
            Some(Tok::Ident(next)) => match next.as_str() {
                "fn" | "extern" => SiteKind::Fn,
                "impl" => SiteKind::Impl,
                "trait" => SiteKind::Trait,
                _ => SiteKind::Block,
            },
            _ => SiteKind::Block,
        };
        let mut justification = find_justification(file, token.line, kind);
        if justification.is_none() {
            if let Some(allow) = ann
                .allows
                .iter()
                .find(|a| a.pass == Pass::UnsafeAudit && i >= a.tok_start && i <= a.tok_end)
            {
                justification = Some(format!("allowed: {}", allow.reason));
            } else {
                findings.push(Finding::new(
                    path,
                    token.line,
                    Pass::UnsafeAudit,
                    match kind {
                        SiteKind::Fn => {
                            "unsafe fn without an adjacent `// SAFETY:` comment or a \
                             `# Safety` doc section"
                        }
                        SiteKind::Impl => "unsafe impl without an adjacent `// SAFETY:` comment",
                        SiteKind::Trait => "unsafe trait without an adjacent `// SAFETY:` comment",
                        SiteKind::Block => "unsafe block without an adjacent `// SAFETY:` comment",
                    },
                ));
            }
        }
        sites.push(UnsafeSite {
            line: token.line,
            kind,
            justification,
        });
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<UnsafeSite>, Vec<Finding>) {
        let file = lex(src).unwrap();
        let mut findings = Vec::new();
        let ann = annot::parse(&file, "t.rs", &mut findings);
        let sites = check(&file, "t.rs", &ann, &mut findings);
        (sites, findings)
    }

    #[test]
    fn justified_block_is_collected_not_flagged() {
        let (sites, findings) = run(
            "fn f() {\n    // SAFETY: the pointer was checked above.\n    unsafe { go() };\n}\n",
        );
        assert!(findings.is_empty());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, SiteKind::Block);
        assert_eq!(
            sites[0].justification.as_deref(),
            Some("the pointer was checked above.")
        );
    }

    #[test]
    fn unjustified_block_is_flagged() {
        let (sites, findings) = run("fn f() {\n    unsafe { go() };\n}\n");
        assert_eq!(findings.len(), 1);
        assert!(sites[0].justification.is_none());
    }

    #[test]
    fn attribute_between_comment_and_site_is_crossed() {
        let (_, findings) = run(
            "// SAFETY: SSE2 is the baseline.\n#[cfg(target_arch = \"x86_64\")]\nfn f() { unsafe { go() } }\n",
        );
        // The comment is two lines up but only an attribute intervenes —
        // wait: the fn line itself has code before `unsafe`, on the same
        // line. Same-line code does not end the search (only lines above
        // are scanned), so the SAFETY comment is found across the
        // attribute.
        assert!(findings.is_empty());
    }

    #[test]
    fn code_line_ends_the_upward_search() {
        let (_, findings) = run(
            "// SAFETY: covers only the first arm.\nfn a() { unsafe { go() } }\nfn b() { unsafe { go() } }\n",
        );
        assert_eq!(
            findings.len(),
            1,
            "second site must not borrow the first's comment"
        );
    }

    #[test]
    fn unsafe_fn_accepts_doc_safety_section() {
        let (sites, findings) = run(
            "/// Does a thing.\n///\n/// # Safety\n/// Caller must uphold X.\n#[inline]\nunsafe fn f() {}\n",
        );
        assert!(findings.is_empty());
        assert_eq!(sites[0].kind, SiteKind::Fn);
        assert_eq!(
            sites[0].justification.as_deref(),
            Some("Caller must uphold X.")
        );
    }

    #[test]
    fn doc_safety_does_not_justify_a_block() {
        let (_, findings) =
            run("/// # Safety\n/// Something.\nfn f() {\n    unsafe { go() };\n}\n");
        assert_eq!(findings.len(), 1, "doc sections justify fns, not blocks");
    }

    #[test]
    fn unsafe_impl_needs_comment() {
        let (s, f) = run("unsafe impl Send for T {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(s[0].kind, SiteKind::Impl);
        let (s, f) = run("// SAFETY: T owns no thread-local state.\nunsafe impl Send for T {}\n");
        assert!(f.is_empty());
        assert_eq!(s[0].kind, SiteKind::Impl);
    }

    #[test]
    fn allow_hatch_substitutes_for_a_comment() {
        let (sites, findings) = run(
            "fn f() {\n    // lint: allow(unsafe-audit) -- generated code, audited upstream\n    unsafe { go() };\n}\n",
        );
        assert!(findings.is_empty());
        assert_eq!(
            sites[0].justification.as_deref(),
            Some("allowed: generated code, audited upstream")
        );
    }

    #[test]
    fn safety_in_prose_or_string_does_not_count() {
        // The word SAFETY inside a string literal is not a comment.
        let (_, findings) =
            run("fn f() {\n    let s = \"SAFETY: nope\";\n    unsafe { go() };\n}\n");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn marker_only_comment_pulls_text_from_next_line() {
        let (sites, findings) = run(
            "fn f() {\n    // SAFETY:\n    // the fd is owned by us.\n    unsafe { go() };\n}\n",
        );
        assert!(findings.is_empty());
        assert_eq!(
            sites[0].justification.as_deref(),
            Some("the fd is owned by us.")
        );
    }
}
