//! `pm-lsh-lint` — CLI wrapper around the workspace lint passes.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pm-lsh-lint -- check               # report findings, exit 1 on any
//! cargo run -p pm-lsh-lint -- check --fix-ledger  # also regenerate docs/UNSAFE.md
//! cargo run -p pm-lsh-lint -- check --root PATH   # lint a different workspace
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pm_lsh_lint::{discover_root, run_check, LEDGER_PATH};

const USAGE: &str = "usage: pm-lsh-lint check [--fix-ledger] [--root PATH]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("check") {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut fix_ledger = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix-ledger" => fix_ledger = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| discover_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("pm-lsh-lint: no workspace root found (no Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };

    let report = match run_check(&root, fix_ledger) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pm-lsh-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.ledger_written {
        println!("pm-lsh-lint: rewrote {LEDGER_PATH}");
    }
    println!(
        "pm-lsh-lint: {} files scanned, {} unsafe sites in ledger, {} finding(s)",
        report.files_scanned,
        report.unsafe_sites,
        report.findings.len()
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
