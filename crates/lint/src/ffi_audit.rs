//! Pass 4 — FFI-result audit.
//!
//! The reactor declares its own `extern "C"` syscall prototypes (the
//! workspace has no libc crate), and every one of them reports failure
//! through its return value + `errno`. A discarded return silently
//! swallows `EBADF`/`EINTR`/`ENOMEM` — exactly the class of bug a
//! reviewer stops seeing after the tenth wrapper.
//!
//! The rule: a call to any function declared inside an `extern "C"` block
//! *in the same file* must not be in discard position. Discard position
//! means the call (possibly wrapped in `unsafe { ... }`) forms a bare
//! expression statement, or is bound to `let _ =`. Anything that routes
//! the value somewhere — `let fd = ...`, `if ... < 0`, a `match`, passing
//! it to a function — counts as checked; the lint enforces that the value
//! *flows*, the tests enforce what the caller does with it.

use crate::annot::Annotations;
use crate::lexer::{LexFile, Tok};
use crate::{Finding, Pass};

/// Names declared in `extern "C" { ... }` blocks in this file.
fn extern_fn_names(file: &LexFile) -> Vec<String> {
    let toks = &file.tokens;
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_extern_c = matches!(&toks[i].tok, Tok::Ident(w) if w == "extern")
            && matches!(&toks.get(i + 1).map(|t| &t.tok), Some(Tok::Str(abi)) if abi == "C")
            && toks.get(i + 2).map(|t| &t.tok) == Some(&Tok::Punct('{'));
        if !is_extern_c {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(w) if w == "fn" => {
                    if let Some(Tok::Ident(name)) = toks.get(j + 1).map(|t| &t.tok) {
                        names.push(name.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
    names
}

/// Walks left from the called identifier across its path qualifier
/// (`sys::poll` → the token before `sys`) and an `unsafe {` wrapper,
/// returning the index of the first *context* token, if any.
fn context_before_call(file: &LexFile, mut idx: usize) -> Option<usize> {
    let toks = &file.tokens;
    // Path qualifiers: `seg :: name` repeatedly.
    while idx >= 3
        && toks[idx - 1].tok == Tok::Punct(':')
        && toks[idx - 2].tok == Tok::Punct(':')
        && matches!(&toks[idx - 3].tok, Tok::Ident(_))
    {
        idx -= 3;
    }
    // An `unsafe {` directly wrapping the call is transparent: the block's
    // value is the call's value.
    while idx >= 2
        && toks[idx - 1].tok == Tok::Punct('{')
        && matches!(&toks[idx - 2].tok, Tok::Ident(w) if w == "unsafe")
    {
        idx -= 2;
    }
    idx.checked_sub(1)
}

/// Runs the pass: flags calls to this file's `extern "C"` functions whose
/// result is discarded.
pub fn check(file: &LexFile, path: &str, ann: &Annotations, findings: &mut Vec<Finding>) {
    let names = extern_fn_names(file);
    if names.is_empty() {
        return;
    }
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let Tok::Ident(word) = &toks[i].tok else {
            continue;
        };
        if !names.iter().any(|n| n == word)
            || toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('('))
        {
            continue;
        }
        // Skip the declaration itself (`fn poll(` inside the extern block).
        if i > 0 && matches!(&toks[i - 1].tok, Tok::Ident(w) if w == "fn") {
            continue;
        }
        let discarded = match context_before_call(file, i) {
            // Start of file: a call cannot be the first token of a valid
            // program, but treat it as a statement to be safe.
            None => true,
            Some(ctx) => match &toks[ctx].tok {
                // Bare expression statement.
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => true,
                // `let _ = call(...)` — an explicit discard.
                Tok::Punct('=') => {
                    ctx >= 2
                        && toks[ctx - 1].tok == Tok::Ident("_".to_string())
                        && matches!(&toks[ctx - 2].tok, Tok::Ident(w) if w == "let")
                }
                _ => false,
            },
        };
        if discarded && !ann.is_allowed(Pass::FfiAudit, i) {
            findings.push(Finding::new(
                path,
                toks[i].line,
                Pass::FfiAudit,
                format!(
                    "return value of extern \"C\" fn `{word}` is discarded — check it and \
                     route errno (`io::Error::last_os_error()`), or document why not with \
                     `// lint: allow(ffi-audit) -- <reason>`"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot;
    use crate::lexer::lex;

    const DECLS: &str =
        "extern \"C\" { pub fn close(fd: i32) -> i32; pub fn poll(p: *mut u8) -> i32; }\n";

    fn run(body: &str) -> Vec<Finding> {
        let src = format!("{DECLS}{body}");
        let file = lex(&src).unwrap();
        let mut findings = Vec::new();
        let ann = annot::parse(&file, "t.rs", &mut findings);
        check(&file, "t.rs", &ann, &mut findings);
        findings
    }

    #[test]
    fn bare_statement_call_is_flagged() {
        let f = run("fn f(fd: i32) { unsafe { close(fd); } }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn let_underscore_is_flagged() {
        let f = run("fn f(fd: i32) { let _ = unsafe { close(fd) }; }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn checked_calls_pass() {
        let f = run(concat!(
            "fn f(fd: i32) -> std::io::Result<()> {\n",
            "    let rc = unsafe { close(fd) };\n",
            "    if rc < 0 { return Err(std::io::Error::last_os_error()); }\n",
            "    if unsafe { sys::poll(core::ptr::null_mut()) } < 0 { panic!(); }\n",
            "    Ok(())\n",
            "}\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn qualified_discard_is_still_flagged() {
        let f = run("fn f() { unsafe { sys::poll(core::ptr::null_mut()); } }\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn allow_hatch_documents_an_intentional_discard() {
        let f = run(concat!(
            "fn f(fd: i32) {\n",
            "    // lint: allow(ffi-audit) -- best-effort close on the drop path\n",
            "    unsafe { close(fd); }\n",
            "}\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_ffi_calls_are_ignored() {
        let f = run("fn f() { helper(); other::thing(); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn declaration_is_not_a_call() {
        // The extern block itself declares `fn close(...)`: not a call.
        let f = run("");
        assert!(f.is_empty(), "{f:?}");
    }
}
