//! Pass 2 — hot-path purity.
//!
//! Modules that opt in with `//! lint: hot-path` promise the PR-3
//! contract: no allocation, no panic machinery, no blocking and no I/O on
//! the steady-state query path. The pass turns that promise into a
//! source-level gate by banning, outside `#[cfg(test)]` items:
//!
//! | banned                  | why                                        |
//! |-------------------------|--------------------------------------------|
//! | `unwrap(` / `expect(`   | hidden panic paths                         |
//! | `panic!` / `todo!` / `unimplemented!` | explicit panic paths         |
//! | `format!` / `vec!` / `Vec::new` / `to_vec` | heap allocation       |
//! | `.lock()`               | blocking on the reactor / query thread     |
//! | `println!` / `eprintln!` / `dbg!` | I/O (and allocation) in kernels  |
//!
//! `assert!`/`debug_assert!` stay legal: the SIMD kernels deliberately
//! keep hard length contracts, and an assert is a *documented* invariant,
//! not an accidental panic path. Cold one-time setup inside a hot module
//! (constructors, error formatting on the failure path) uses the scoped
//! escape hatch: `// lint: allow(hot-path) -- <reason>`.

use crate::annot::Annotations;
use crate::lexer::{LexFile, Tok};
use crate::{Finding, Pass};

/// Banned method-style identifiers (identifier directly followed by `(`).
const BANNED_CALLS: [&str; 3] = ["unwrap", "expect", "to_vec"];

/// Banned macros (identifier directly followed by `!`).
const BANNED_MACROS: [&str; 7] = [
    "panic",
    "format",
    "println",
    "eprintln",
    "vec",
    "todo",
    "unimplemented",
];

fn ident_at(file: &LexFile, idx: usize) -> Option<&str> {
    match file.tokens.get(idx).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(file: &LexFile, idx: usize, c: char) -> bool {
    file.tokens.get(idx).is_some_and(|t| t.tok == Tok::Punct(c))
}

/// Token-index ranges covered by `#[cfg(test)]`-ish attributes (any `cfg`
/// attribute mentioning `test`), each extended over the item that follows
/// (to its closing `}` or, for brace-less items, its `;`).
fn cfg_test_ranges(file: &LexFile) -> Vec<(usize, usize)> {
    let toks = &file.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].tok != Tok::Punct('#')
            || toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('['))
        {
            i += 1;
            continue;
        }
        // Parse the attribute to its matching `]`.
        let attr_start = i;
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(word) => {
                    if word == "cfg" || word == "cfg_attr" {
                        saw_cfg = true;
                    }
                    if word == "test" {
                        saw_test = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) {
            i = j + 1;
            continue;
        }
        // Skip any further attributes before the item itself.
        let mut k = j + 1;
        while k + 1 < toks.len()
            && toks[k].tok == Tok::Punct('#')
            && toks[k + 1].tok == Tok::Punct('[')
        {
            let mut d = 0i32;
            while k < toks.len() {
                match toks[k].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // The item runs to its matching close brace, or to `;` for
        // brace-less items (`#[cfg(test)] use super::*;`).
        let mut d = 0i32;
        let mut end = k;
        while end < toks.len() {
            match toks[end].tok {
                Tok::Punct('{') => d += 1,
                Tok::Punct('}') => {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if d == 0 => break,
                _ => {}
            }
            end += 1;
        }
        ranges.push((attr_start, end.min(toks.len().saturating_sub(1))));
        i = end + 1;
    }
    ranges
}

/// Runs the pass over one `//! lint: hot-path` module.
pub fn check(file: &LexFile, path: &str, ann: &Annotations, findings: &mut Vec<Finding>) {
    let toks = &file.tokens;
    let test_ranges = cfg_test_ranges(file);
    let in_test = |idx: usize| test_ranges.iter().any(|&(s, e)| idx >= s && idx <= e);
    let mut report = |idx: usize, line: u32, what: &str| {
        if in_test(idx) || ann.is_allowed(Pass::HotPath, idx) {
            return;
        }
        findings.push(Finding::new(
            path,
            line,
            Pass::HotPath,
            format!(
                "{what} is banned in hot-path modules (use `// lint: allow(hot-path) -- \
                 <reason>` for genuinely cold code)"
            ),
        ));
    };
    for (i, token) in toks.iter().enumerate() {
        let line = token.line;
        match &token.tok {
            Tok::Punct('.')
                if ident_at(file, i + 1) == Some("lock") && punct_at(file, i + 2, '(') =>
            {
                report(i, line, "`.lock()` (blocking)");
            }
            Tok::Ident(word) => {
                if BANNED_CALLS.contains(&word.as_str()) && punct_at(file, i + 1, '(') {
                    report(i, line, &format!("`{word}()` (panic/allocation path)"));
                } else if BANNED_MACROS.contains(&word.as_str()) && punct_at(file, i + 1, '!') {
                    report(i, line, &format!("`{word}!`"));
                } else if word == "Vec"
                    && punct_at(file, i + 1, ':')
                    && punct_at(file, i + 2, ':')
                    && ident_at(file, i + 3) == Some("new")
                {
                    report(i, line, "`Vec::new` (allocation)");
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annot;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let file = lex(src).unwrap();
        let mut findings = Vec::new();
        let ann = annot::parse(&file, "t.rs", &mut findings);
        check(&file, "t.rs", &ann, &mut findings);
        findings
    }

    #[test]
    fn banned_constructs_are_flagged() {
        let f = run(concat!(
            "//! lint: hot-path\n",
            "fn f(o: Option<u32>) -> u32 {\n",
            "    let v = Vec::new();\n",
            "    let w = o.to_vec();\n",
            "    let g = m.lock();\n",
            "    let s = format!(\"{}\", 1);\n",
            "    o.unwrap()\n",
            "}\n",
        ));
        assert_eq!(f.len(), 5, "{f:?}");
    }

    #[test]
    fn prose_and_tests_are_exempt() {
        let f = run(concat!(
            "//! lint: hot-path\n",
            "/// Call `.unwrap()` at your peril; `Vec::new` allocates.\n",
            "fn ok() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { Some(1).unwrap(); panic!(\"x\"); }\n",
            "}\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cfg_test_on_single_item_is_exempt() {
        let f = run(concat!(
            "//! lint: hot-path\n",
            "#[cfg(test)]\n",
            "fn helper() { Some(1).unwrap(); }\n",
            "fn hot() { Some(1).unwrap(); }\n",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn allow_hatch_is_scoped_to_one_statement() {
        let f = run(concat!(
            "//! lint: hot-path\n",
            "fn f() {\n",
            "    // lint: allow(hot-path) -- one-time cold constructor\n",
            "    let a = Vec::new();\n",
            "    let b = Vec::new();\n",
            "}\n",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn into_vec_and_unwrap_or_do_not_match() {
        let f = run(concat!(
            "//! lint: hot-path\n",
            "fn f(h: H) { h.into_vec(); o.unwrap_or(3); }\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn asserts_stay_legal() {
        let f = run(concat!(
            "//! lint: hot-path\n",
            "fn f(a: &[f32], b: &[f32]) { assert_eq!(a.len(), b.len()); debug_assert!(true); }\n",
        ));
        assert!(f.is_empty(), "{f:?}");
    }
}
