//! The real workspace must lint clean, with `docs/UNSAFE.md` in sync.
//!
//! This is the test CI's `lint` job re-runs as a binary; having it in the
//! default test suite means a plain `cargo test` also fails on unsafe
//! hygiene drift, hot-path violations, protocol drift or a stale ledger.

use std::path::Path;

use pm_lsh_lint::run_check;

fn workspace_root() -> &'static Path {
    // crates/lint/../.. is the workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn workspace_is_lint_clean() {
    let report = run_check(workspace_root(), false).expect("lint run succeeds");
    assert!(
        report.clean(),
        "workspace lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 100, "scan saw the whole workspace");
    assert!(
        report.unsafe_sites > 30,
        "ledger collected the unsafe sites"
    );
}
