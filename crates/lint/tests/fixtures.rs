//! Fixture-driven self-tests: every `bad_*.rs` snippet under
//! `tests/fixtures/` must produce findings from the pass its name
//! announces, and every `good_*.rs` snippet must be clean. The fixtures
//! directory is excluded from workspace scans (`workspace_rs_files` skips
//! dirs named `fixtures`), so the known-bad files never fail the real
//! check.

use std::path::{Path, PathBuf};

use pm_lsh_lint::{annot, ffi_audit, hotpath, lexer, unsafe_audit, Finding, Pass};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The per-file pipeline `run_check` applies, minus the workspace-level
/// protocol and ledger stages (those have their own unit tests).
fn lint_file(src: &str, name: &str) -> Vec<Finding> {
    let file = lexer::lex(src).unwrap_or_else(|e| panic!("{name}: lex error: {e:?}"));
    let mut findings = Vec::new();
    let ann = annot::parse(&file, name, &mut findings);
    unsafe_audit::check(&file, name, &ann, &mut findings);
    if ann.hot_path {
        hotpath::check(&file, name, &ann, &mut findings);
    }
    ffi_audit::check(&file, name, &ann, &mut findings);
    findings
}

/// `bad_<pass>_*.rs` → the pass every finding must come from.
fn expected_pass(name: &str) -> Pass {
    for (prefix, pass) in [
        ("bad_unsafe", Pass::UnsafeAudit),
        ("bad_hotpath", Pass::HotPath),
        ("bad_ffi", Pass::FfiAudit),
        ("bad_annotation", Pass::Annotation),
    ] {
        if name.starts_with(prefix) {
            return pass;
        }
    }
    panic!("fixture {name} does not declare its pass in its filename");
}

#[test]
fn every_fixture_behaves_as_named() {
    let mut saw_bad = 0;
    let mut saw_good = 0;
    for entry in std::fs::read_dir(fixtures_dir()).expect("fixtures dir exists") {
        let path = entry.expect("readable entry").path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if !name.ends_with(".rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable fixture");
        let findings = lint_file(&src, &name);
        if name.starts_with("bad_") {
            saw_bad += 1;
            assert!(!findings.is_empty(), "{name}: expected findings, got none");
            let pass = expected_pass(&name);
            for f in &findings {
                assert_eq!(f.pass, pass, "{name}: unexpected finding {f}");
            }
        } else if name.starts_with("good_") {
            saw_good += 1;
            assert!(
                findings.is_empty(),
                "{name}: expected clean, got {findings:?}"
            );
        } else {
            panic!("fixture {name} must start with bad_ or good_");
        }
    }
    assert!(saw_bad >= 5, "only {saw_bad} bad fixtures found");
    assert!(saw_good >= 3, "only {saw_good} good fixtures found");
}

#[test]
fn bad_fixtures_report_accurate_lines() {
    let src = std::fs::read_to_string(fixtures_dir().join("bad_unsafe_block_no_comment.rs"))
        .expect("fixture exists");
    let findings = lint_file(&src, "bad_unsafe_block_no_comment.rs");
    assert_eq!(findings.len(), 1);
    // The unsafe block sits on line 3 of the snippet.
    assert_eq!(findings[0].line, 3, "{findings:?}");
}

#[test]
fn hotpath_fixture_counts_each_construct() {
    let src = std::fs::read_to_string(fixtures_dir().join("bad_hotpath_allocation.rs"))
        .expect("fixture exists");
    let findings = lint_file(&src, "bad_hotpath_allocation.rs");
    // Vec::new, to_vec, .lock(), format!.
    assert_eq!(findings.len(), 4, "{findings:?}");
}
