//! lint: hot-path
//!
//! A clean hot-path module: asserts are legal, tests are exempt, cold
//! code uses the documented escape hatch, and prose mentioning
//! `.unwrap()` or `Vec::new` does not fire.

/// Scratch buffers; call `.unwrap()` nowhere.
pub struct Scratch {
    buf: Vec<f32>,
}

impl Scratch {
    pub fn new() -> Self {
        // lint: allow(hot-path) -- one-time constructor, reused afterwards
        let buf = Vec::new();
        Self { buf }
    }

    pub fn sum(&self, a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len());
        debug_assert!(self.buf.is_empty() || !self.buf.is_empty());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_panic_and_allocate() {
        let v: Vec<f32> = Vec::new();
        assert!(v.first().copied().unwrap_or(0.0) == 0.0);
        let s = format!("{}", Scratch::new().sum(&[1.0], &[2.0]));
        assert_eq!(s, "2");
    }
}
