// An unsafe block with no adjacent SAFETY comment: unsafe-audit finding.
fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}
