// Not marked hot-path: unwrap/allocation are fine here, and the word
// SAFETY in a string is not a comment.
pub fn relaxed(o: Option<u32>) -> String {
    let v = vec![o.unwrap(); 3];
    let s = "SAFETY: just a string";
    format!("{v:?} {s}")
}
