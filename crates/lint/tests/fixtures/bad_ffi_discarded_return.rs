// Discarded syscall results: two ffi-audit findings (bare statement and
// `let _ =`).
mod sys {
    extern "C" {
        pub fn close(fd: i32) -> i32;
    }
}

pub fn sloppy(fd: i32) {
    // SAFETY: fd is owned by the caller.
    unsafe {
        sys::close(fd);
    }
    // SAFETY: fd is owned by the caller.
    let _ = unsafe { sys::close(fd) };
}
