//! lint: hot-path
//!
//! Hidden panic paths in a hot-path module: two hot-path findings.

pub fn pick(v: &[f32], i: Option<usize>) -> f32 {
    let idx = i.unwrap();
    v.get(idx).copied().expect("index in range")
}
