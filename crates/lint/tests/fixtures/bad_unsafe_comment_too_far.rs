// SAFETY: this comment is separated from the unsafe block by a code line,
// so it justifies nothing below `checked()`.
fn checked() {}
fn not_justified(p: *const u8) -> u8 {
    unsafe { *p }
}
