// Malformed lint annotations: three annotation findings (missing reason,
// unknown pass, unrecognized form).
pub fn f() -> Option<u32> {
    // lint: allow(hot-path)
    let a = Some(1);
    // lint: allow(no-such-pass) -- misspelled pass name
    let b = Some(2);
    // lint: hotpath
    a.or(b)
}
