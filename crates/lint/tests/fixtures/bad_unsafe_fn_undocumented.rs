/// Dereferences `p`. (Doc comment present, but no `# Safety` section.)
pub unsafe fn deref(p: *const u8) -> u8 {
    // SAFETY: caller promised `p` is valid.
    unsafe { *p }
}
