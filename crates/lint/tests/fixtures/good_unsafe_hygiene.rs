// Every unsafe site justified: no findings.

/// Reads the first byte.
///
/// # Safety
/// `p` must be non-null and point to initialized memory.
pub unsafe fn deref(p: *const u8) -> u8 {
    // SAFETY: the fn's contract guarantees `p` is valid.
    unsafe { *p }
}

struct Token(u8);

// SAFETY: Token is a plain byte; no thread affinity anywhere.
unsafe impl Send for Token {}

// SAFETY: a comment may sit above an attribute line.
#[allow(dead_code)]
fn with_attr(p: *const u8) -> u8 {
    // SAFETY: same-line adjacency.
    unsafe { *p }
}
