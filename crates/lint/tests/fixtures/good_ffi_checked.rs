// Every syscall result flows somewhere: no ffi-audit findings.
mod sys {
    extern "C" {
        pub fn close(fd: i32) -> i32;
        pub fn dup(fd: i32) -> i32;
    }
}

pub fn careful(fd: i32) -> std::io::Result<i32> {
    // SAFETY: fd is owned by the caller.
    let copy = unsafe { sys::dup(fd) };
    if copy < 0 {
        return Err(std::io::Error::last_os_error());
    }
    // SAFETY: fd is owned by the caller.
    if unsafe { sys::close(fd) } < 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok(copy)
}
