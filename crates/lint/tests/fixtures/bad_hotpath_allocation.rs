//! lint: hot-path
//!
//! Allocation and I/O in a hot-path module: findings for `Vec::new`,
//! `format!`, `to_vec` and `.lock()`.

use std::sync::Mutex;

pub fn noisy(m: &Mutex<Vec<f32>>, v: &[f32]) -> String {
    let mut scratch: Vec<f32> = Vec::new();
    scratch.extend_from_slice(&v.to_vec());
    let guard = m.lock();
    drop(guard);
    format!("{} values", scratch.len())
}
