//! Euclidean distance kernels.
//!
//! All hot paths of the workspace funnel through [`sq_dist`]: PM-tree and
//! R-tree traversals in the m-dimensional projected space (m = 15 in the
//! paper) and candidate verification in the original d-dimensional space
//! (d up to 4096 for Trevi). The actual arithmetic lives in
//! [`crate::simd`], which picks an implementation per process at first
//! use — AVX2+FMA or SSE2 on x86-64, NEON on aarch64, a portable
//! 4-accumulator scalar loop everywhere else (and under
//! `PMLSH_FORCE_SCALAR=1`).
//!
//! [`sq_dist_within`] is the verification-loop variant: it stops
//! accumulating as soon as the partial sum strictly exceeds a caller
//! bound, so candidates that cannot displace the current k-th neighbor
//! never pay the full `d`-length loop.

use crate::simd;

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length (in every build profile — a
/// silent truncation would mask real dimensionality bugs at full speed).
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "sq_dist: slice length mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    simd::sq_dist_dispatch(a, b)
}

/// Early-abandoning squared Euclidean distance.
///
/// Accumulates `||a - b||²` in blocks and returns as soon as the partial
/// sum *strictly* exceeds `bound` (a partial sum exactly equal to the
/// bound keeps accumulating). Since every term is non-negative, the
/// partial sum is a lower bound on the full distance, so:
///
/// * the returned value is `> bound` **iff** [`sq_dist`] would be
///   `> bound`, and
/// * whenever the returned value is `<= bound` it is **bit-identical** to
///   [`sq_dist`] (same kernel, same accumulation order — abandonment can
///   skip work but never changes a kept result).
///
/// Pass [`f32::INFINITY`] to disable abandonment entirely.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn sq_dist_within(a: &[f32], b: &[f32], bound: f32) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "sq_dist_within: slice length mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    simd::sq_dist_within_dispatch(a, b, bound)
}

/// Euclidean distance `||a - b||`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    sq_dist(a, b).sqrt()
}

/// Dot product `a · b` (used by the Gaussian projections `h*(o) = a · o`).
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: slice length mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    simd::dot_dispatch(a, b)
}

/// Euclidean norm `||a||`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// L1 (Manhattan) distance. Only used by the Fig. 3 estimator study, where
/// the paper compares the L2 estimator against an L1 alternative.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn l1_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "l1_dist: slice length mismatch ({} vs {})",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn pythagoras() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn matches_naive_on_awkward_lengths() {
        // exercise every remainder branch: len % 8 in {0..7}
        for len in [1usize, 2, 3, 4, 5, 7, 8, 15, 16, 33] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.5 - 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32) * -0.25 + 1.0).collect();
            let got = sq_dist(&a, &b);
            let want = naive_sq(&a, &b);
            assert!((got - want).abs() <= 1e-4 * want.max(1.0), "len {len}");
        }
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn l1_matches_manual() {
        assert_eq!(l1_dist(&[1.0, -2.0], &[-1.0, 3.0]), 7.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [0.25f32, -7.5, 3.25, 0.0, 9.0];
        assert_eq!(sq_dist(&a, &a), 0.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn within_with_infinite_bound_equals_full() {
        let a: Vec<f32> = (0..100).map(|i| (i as f32) * 0.1).collect();
        let b: Vec<f32> = (0..100).map(|i| (i as f32) * -0.2 + 5.0).collect();
        assert_eq!(sq_dist_within(&a, &b, f32::INFINITY), sq_dist(&a, &b));
    }

    #[test]
    fn within_bound_is_strict() {
        // A partial (or full) sum exactly equal to the bound must NOT count
        // as abandoned: the kept value comes back exact.
        let a = [3.0f32, 0.0, 0.0, 0.0];
        let b = [0.0f32, 4.0, 0.0, 0.0];
        let full = sq_dist(&a, &b); // 25.0
        assert_eq!(sq_dist_within(&a, &b, full), full);
        assert!(sq_dist_within(&a, &b, 24.9) > 24.9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sq_dist_rejects_length_mismatch() {
        let _ = sq_dist(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sq_dist_within_rejects_length_mismatch() {
        let _ = sq_dist_within(&[1.0, 2.0, 3.0], &[1.0], 10.0);
    }
}
