//! Euclidean distance kernels.
//!
//! All hot paths of the workspace funnel through [`sq_dist`]: PM-tree and
//! R-tree traversals in the m-dimensional projected space (m = 15 in the
//! paper) and candidate verification in the original d-dimensional space
//! (d up to 4096 for Trevi). The kernel processes four lanes at a time so
//! LLVM auto-vectorizes it; the remainder is handled scalar.

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics (debug builds) if the slices differ in length; in release the
/// shorter length wins, which never happens for slices produced by
/// [`crate::Dataset`].
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        sum += d * d;
    }
    sum
}

/// Euclidean distance `||a - b||`.
#[inline]
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    sq_dist(a, b).sqrt()
}

/// Dot product `a · b` (used by the Gaussian projections `h*(o) = a · o`).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for j in chunks * 4..n {
        sum += a[j] * b[j];
    }
    sum
}

/// Euclidean norm `||a||`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// L1 (Manhattan) distance. Only used by the Fig. 3 estimator study, where
/// the paper compares the L2 estimator against an L1 alternative.
#[inline]
pub fn l1_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn pythagoras() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn matches_naive_on_awkward_lengths() {
        // exercise every remainder branch: len % 4 in {0,1,2,3}
        for len in [1usize, 2, 3, 4, 5, 7, 8, 15, 16, 33] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.5 - 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32) * -0.25 + 1.0).collect();
            let got = sq_dist(&a, &b);
            let want = naive_sq(&a, &b);
            assert!((got - want).abs() <= 1e-4 * want.max(1.0), "len {len}");
        }
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn l1_matches_manual() {
        assert_eq!(l1_dist(&[1.0, -2.0], &[-1.0, 3.0]), 7.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let a = [0.25f32, -7.5, 3.25, 0.0, 9.0];
        assert_eq!(sq_dist(&a, &a), 0.0);
        assert_eq!(euclidean(&a, &a), 0.0);
    }
}
