//! Owned row-major point matrices.

use crate::view::MatrixView;
use crate::PointId;

/// An owned collection of `n` points in `R^dim`, stored row-major in one
/// contiguous `Vec<f32>`.
///
/// The flat layout matches what the distance kernels in [`crate::dist`]
/// expect and keeps cache behaviour predictable: point `i` occupies
/// `data[i*dim .. (i+1)*dim]`.
///
/// ```
/// use pm_lsh_metric::Dataset;
/// let ds = Dataset::from_rows(vec![vec![0.0, 1.0], vec![3.0, 4.0]]);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.dim(), 2);
/// assert_eq!(ds.point(1), &[3.0, 4.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    data: Vec<f32>,
    dim: usize,
}

impl Dataset {
    /// Creates a dataset from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { data, dim }
    }

    /// Creates a dataset from per-point rows.
    ///
    /// # Panics
    /// Panics if `rows` is empty or rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Self {
        assert!(!rows.is_empty(), "cannot build a dataset from zero rows");
        let dim = rows[0].len();
        assert!(dim > 0, "dimension must be positive");
        let mut data = Vec::with_capacity(rows.len() * dim);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dim, "row {i} has length {} != {dim}", row.len());
            data.extend_from_slice(row);
        }
        Self { data, dim }
    }

    /// An empty dataset with a fixed dimensionality, ready for [`Self::push`].
    pub fn with_capacity(dim: usize, points: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            data: Vec::with_capacity(dim * points),
            dim,
        }
    }

    /// Appends one point.
    ///
    /// # Panics
    /// Panics if `point.len() != self.dim()`.
    pub fn push(&mut self, point: &[f32]) {
        assert_eq!(point.len(), self.dim, "point has wrong dimensionality");
        self.data.extend_from_slice(point);
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when the dataset holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows point `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrows point `id` (the `u32` form used by index structures).
    #[inline]
    pub fn point_id(&self, id: PointId) -> &[f32] {
        self.point(id as usize)
    }

    /// Mutably borrows point `i`.
    #[inline]
    pub fn point_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over all points in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// A borrowed [`MatrixView`] over the same points.
    #[inline]
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView::new(&self.data, self.dim)
    }

    /// Appends every point of `view` in order (one flat copy, used by the
    /// PM-tree bulk loader when splicing subtree point stores together).
    ///
    /// # Panics
    /// Panics if `view.dim() != self.dim()`.
    pub fn extend_from_view(&mut self, view: MatrixView<'_>) {
        assert_eq!(view.dim(), self.dim, "view has wrong dimensionality");
        self.data.extend_from_slice(view.as_flat());
    }

    /// Removes point `i` by moving the last point into its row and
    /// truncating — O(dim), no shifting. The caller owns the id remap
    /// (the PM-tree rewrites the one leaf entry referencing the moved
    /// row); every other row keeps its index.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn swap_remove(&mut self, i: usize) {
        let n = self.len();
        assert!(i < n, "swap_remove index {i} out of bounds (len {n})");
        let last = n - 1;
        if i != last {
            let (head, tail) = self.data.split_at_mut(last * self.dim);
            head[i * self.dim..(i + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
        }
        self.data.truncate(last * self.dim);
    }

    /// Copies the selected points (in the given order) into a new dataset.
    ///
    /// Used for query-set extraction and sampling.
    pub fn gather(&self, ids: &[PointId]) -> Dataset {
        let mut out = Dataset::with_capacity(self.dim, ids.len());
        for &id in ids {
            out.push(self.point_id(id));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_flat_roundtrip() {
        let ds = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.point(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.point(1), &[4.0, 5.0, 6.0]);
        assert!(!ds.is_empty());
    }

    #[test]
    fn push_and_iter() {
        let mut ds = Dataset::with_capacity(2, 4);
        assert!(ds.is_empty());
        ds.push(&[0.0, 1.0]);
        ds.push(&[2.0, 3.0]);
        let rows: Vec<&[f32]> = ds.iter().collect();
        assert_eq!(rows, vec![&[0.0, 1.0][..], &[2.0, 3.0][..]]);
    }

    #[test]
    fn gather_selects_in_order() {
        let ds = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let sub = ds.gather(&[3, 1]);
        assert_eq!(sub.point(0), &[3.0]);
        assert_eq!(sub.point(1), &[1.0]);
    }

    #[test]
    fn swap_remove_moves_last_row_and_truncates() {
        let mut ds = Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        ds.swap_remove(0);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.point(0), &[2.0, 2.0]);
        assert_eq!(ds.point(1), &[1.0, 1.0]);
        // Removing the last row is a pure truncation.
        ds.swap_remove(1);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.point(0), &[2.0, 2.0]);
        ds.swap_remove(0);
        assert!(ds.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn swap_remove_rejects_out_of_range() {
        let mut ds = Dataset::from_rows(vec![vec![1.0]]);
        ds.swap_remove(1);
    }

    #[test]
    fn point_mut_updates_in_place() {
        let mut ds = Dataset::from_rows(vec![vec![1.0, 1.0]]);
        ds.point_mut(0)[1] = 9.0;
        assert_eq!(ds.point(0), &[1.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_flat_rejects_ragged() {
        let _ = Dataset::from_flat(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn push_rejects_wrong_dim() {
        let mut ds = Dataset::with_capacity(3, 1);
        ds.push(&[1.0]);
    }

    #[test]
    fn view_matches_owner() {
        let ds = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = ds.view();
        assert_eq!(v.len(), ds.len());
        assert_eq!(v.point(1), ds.point(1));
    }
}
