//! Dense `f32` vector datasets and Euclidean distance kernels — the
//! paper's problem setting (Section 2: points in `R^d` under `l_2`) as
//! types.
//!
//! This crate is the lowest layer of the PM-LSH workspace. Every other crate
//! (the PM-tree, the R-tree, the LSH hash family, the query algorithms and the
//! benchmark harness) manipulates points through the types defined here:
//!
//! * [`Dataset`] — an owned, row-major `n x dim` matrix of `f32`, the in-memory
//!   representation of both the original `d`-dimensional data and the
//!   `m`-dimensional projected data.
//! * [`MatrixView`] — a borrowed view over the same layout, used by indexes
//!   that do not own their points.
//! * [`dist`] — Euclidean kernels (`sq_dist`, `sq_dist_within`,
//!   `euclidean`, `dot`).
//! * [`simd`] — the runtime-dispatched kernel implementations behind
//!   [`dist`]: AVX2+FMA / SSE2 on x86-64, NEON on aarch64, a portable
//!   scalar loop elsewhere (and under `PMLSH_FORCE_SCALAR=1`).
//! * [`topk`] — a bounded max-heap for k-nearest-neighbor selection.

#![warn(missing_docs)]

pub mod dataset;
pub mod dist;
pub mod simd;
pub mod topk;
pub mod view;

pub use dataset::Dataset;
pub use dist::{dot, euclidean, norm, sq_dist, sq_dist_within};
pub use simd::SimdLevel;
pub use topk::{Neighbor, TopK};
pub use view::MatrixView;

/// Identifier of a point inside a [`Dataset`].
///
/// `u32` keeps index entries small (the paper's largest dataset has 10^6
/// points); use [`PointId::MAX`] as a sentinel where needed.
pub type PointId = u32;
