//! lint: hot-path
//!
//! Runtime-dispatched SIMD kernels behind [`crate::dist`].
//!
//! The public entry points ([`crate::sq_dist`], [`crate::sq_dist_within`],
//! [`crate::dot`]) pick an implementation once per process:
//!
//! * **x86-64** — SSE2 is the architectural baseline and is always
//!   available; AVX2 + FMA is selected when the CPU reports both (runtime
//!   detection, no compile-time `target-feature` flags needed).
//! * **aarch64** — NEON is the architectural baseline.
//! * anything else — the portable scalar kernel.
//!
//! Setting `PMLSH_FORCE_SCALAR=1` in the environment pins the scalar
//! kernel regardless of hardware (read once, at first use) so the
//! non-SIMD path stays testable on SIMD machines.
//!
//! # Numerical contract
//!
//! The scalar kernel keeps the historical 4-lane accumulator order
//! (`(s0 + s1) + (s2 + s3)`), and the SSE2/NEON kernels reproduce exactly
//! that order with one 4-lane register — their results are **bit-identical**
//! to the scalar kernel on every input. The AVX2+FMA kernel uses 8 lanes
//! and fused multiply-adds, so it may differ from scalar/SSE2 in the last
//! ulps; the property tests in `tests/kernel_parity.rs` pin both claims.
//!
//! Each early-abandoning `*_within` kernel shares its accumulation loop
//! with the corresponding full kernel (one generic body, `CHECK` toggled at
//! compile time), so a candidate that is *not* abandoned produces exactly
//! the full kernel's value — early abandonment can only skip work, never
//! change a kept result.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the process dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable 4-accumulator scalar loop (also the `PMLSH_FORCE_SCALAR`
    /// fallback).
    Scalar,
    /// x86-64 SSE2 (baseline); bit-identical to [`SimdLevel::Scalar`].
    Sse2,
    /// x86-64 AVX2 + FMA (runtime-detected); may differ from scalar in the
    /// last ulps.
    Avx2Fma,
    /// aarch64 NEON (baseline); bit-identical to [`SimdLevel::Scalar`].
    Neon,
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2Fma => "avx2+fma",
            SimdLevel::Neon => "neon",
        };
        f.write_str(s)
    }
}

const LEVEL_UNINIT: u8 = 0;
const LEVEL_SCALAR: u8 = 1;
const LEVEL_SSE2: u8 = 2;
const LEVEL_AVX2: u8 = 3;
const LEVEL_NEON: u8 = 4;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// The kernel level every distance call in this process dispatches to
/// (detected once, then cached).
#[inline]
pub fn active_level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_SCALAR => SimdLevel::Scalar,
        LEVEL_SSE2 => SimdLevel::Sse2,
        LEVEL_AVX2 => SimdLevel::Avx2Fma,
        LEVEL_NEON => SimdLevel::Neon,
        _ => detect_level(),
    }
}

#[cold]
fn detect_level() -> SimdLevel {
    let level = if scalar_forced_by_env() {
        SimdLevel::Scalar
    } else {
        hardware_level()
    };
    let code = match level {
        SimdLevel::Scalar => LEVEL_SCALAR,
        SimdLevel::Sse2 => LEVEL_SSE2,
        SimdLevel::Avx2Fma => LEVEL_AVX2,
        SimdLevel::Neon => LEVEL_NEON,
    };
    LEVEL.store(code, Ordering::Relaxed);
    level
}

/// `true` when `PMLSH_FORCE_SCALAR` is set to anything but `""` or `"0"`.
fn scalar_forced_by_env() -> bool {
    match std::env::var("PMLSH_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

fn hardware_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma") {
            return SimdLevel::Avx2Fma;
        }
        // SSE2 is part of the x86-64 baseline: always present.
        return SimdLevel::Sse2;
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is part of the aarch64 baseline: always present.
        return SimdLevel::Neon;
    }
    #[allow(unreachable_code)]
    SimdLevel::Scalar
}

/// `true` when the AVX2+FMA kernels can run on this CPU (x86-64 only).
pub fn avx2_fma_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// How many 4-lane blocks the scalar/SSE2/NEON kernels accumulate between
// two early-abandon checks (a check costs a horizontal sum, amortized
// over 16 floats). The AVX2 kernel uses its own cadence: one check per
// two 32-float iterations, i.e. every 64 floats.
const CHECK_STRIDE: usize = 4;

// ---------------------------------------------------------------------------
// Scalar kernels (also the reference the SIMD paths are tested against).
// ---------------------------------------------------------------------------

/// One generic body for both the full and the early-abandoning scalar
/// squared-distance loop: `CHECK = false` compiles the bound test away and
/// reproduces the historical kernel instruction-for-instruction.
#[inline(always)]
fn sq_dist_scalar_impl<const CHECK: bool>(a: &[f32], b: &[f32], bound: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut i = 0usize;
    while i < chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
        i += 1;
        if CHECK && i.is_multiple_of(CHECK_STRIDE) {
            let partial = (s0 + s1) + (s2 + s3);
            if partial > bound {
                return partial;
            }
        }
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        sum += d * d;
    }
    sum
}

#[inline(always)]
fn dot_scalar_impl(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for j in chunks * 4..n {
        sum += a[j] * b[j];
    }
    sum
}

// ---------------------------------------------------------------------------
// x86-64: SSE2 (baseline) and AVX2 + FMA (runtime-detected).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::CHECK_STRIDE;
    use core::arch::x86_64::*;

    /// Horizontal sum of a 4-lane register in the scalar kernel's order:
    /// `(l0 + l1) + (l2 + l3)` — the order is what makes SSE2 results
    /// bit-identical to the scalar kernel.
    ///
    /// # Safety
    /// Requires SSE2, which is the x86-64 baseline.
    #[inline(always)]
    unsafe fn hsum128(v: __m128) -> f32 {
        let swapped = _mm_shuffle_ps(v, v, 0b10_11_00_01); // [l1, l0, l3, l2]
        let pairs = _mm_add_ps(v, swapped); // [l0+l1, _, l2+l3, _]
        let hi = _mm_movehl_ps(pairs, pairs); // lane0 = l2+l3
        _mm_cvtss_f32(_mm_add_ss(pairs, hi)) // (l0+l1) + (l2+l3)
    }

    /// Horizontal sum of an 8-lane register: lanes `l` and `l+4` pair
    /// first, then the 4-lane order above. Any fixed order works here (the
    /// AVX2 kernel makes no bit-identicality promise); it only has to be
    /// the same for the full and the `within` variant, which share it.
    ///
    /// # Safety
    /// Caller must ensure AVX is available (the AVX2 kernels only run
    /// after runtime detection).
    #[inline(always)]
    unsafe fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        hsum128(_mm_add_ps(lo, hi))
    }

    /// # Safety
    /// Caller must ensure SSE2 is available (always true on x86-64) and
    /// `a.len() == b.len()`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sq_dist_sse2_impl<const CHECK: bool>(
        a: &[f32],
        b: &[f32],
        bound: f32,
    ) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 4;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc = _mm_setzero_ps();
        let mut i = 0usize;
        while i < chunks {
            let d = _mm_sub_ps(_mm_loadu_ps(pa.add(i * 4)), _mm_loadu_ps(pb.add(i * 4)));
            acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
            i += 1;
            if CHECK && i.is_multiple_of(CHECK_STRIDE) {
                let partial = hsum128(acc);
                if partial > bound {
                    return partial;
                }
            }
        }
        let mut sum = hsum128(acc);
        for j in chunks * 4..n {
            let d = *a.get_unchecked(j) - *b.get_unchecked(j);
            sum += d * d;
        }
        sum
    }

    /// # Safety
    /// Caller must ensure SSE2 is available and `a.len() == b.len()`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn dot_sse2_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 4;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc = _mm_setzero_ps();
        for i in 0..chunks {
            let prod = _mm_mul_ps(_mm_loadu_ps(pa.add(i * 4)), _mm_loadu_ps(pb.add(i * 4)));
            acc = _mm_add_ps(acc, prod);
        }
        let mut sum = hsum128(acc);
        for j in chunks * 4..n {
            sum += *a.get_unchecked(j) * *b.get_unchecked(j);
        }
        sum
    }

    /// # Safety
    /// Caller must ensure AVX2 and FMA are available and
    /// `a.len() == b.len()`.
    ///
    /// Four independent accumulators (32 floats per iteration) break the
    /// loop-carried FMA dependency chain — with one register the loop is
    /// bound by FMA *latency* (~4 cycles per 8 floats), with four it
    /// approaches FMA *throughput*. The `CHECK` variant tests the bound
    /// once per 64 floats (every other iteration), amortizing the
    /// horizontal sum.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn sq_dist_avx2_impl<const CHECK: bool>(
        a: &[f32],
        b: &[f32],
        bound: f32,
    ) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let wide = n / 32;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i < wide {
            let j = i * 32;
            let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(j)), _mm256_loadu_ps(pb.add(j)));
            let d1 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(j + 8)),
                _mm256_loadu_ps(pb.add(j + 8)),
            );
            let d2 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(j + 16)),
                _mm256_loadu_ps(pb.add(j + 16)),
            );
            let d3 = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(j + 24)),
                _mm256_loadu_ps(pb.add(j + 24)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            i += 1;
            // Check every other 32-float iteration: one horizontal sum per
            // 64 floats keeps the overhead for never-abandoned candidates
            // small while still cutting abandoned ones off early.
            if CHECK && i.is_multiple_of(2) {
                let partial = hsum256(_mm256_add_ps(
                    _mm256_add_ps(acc0, acc1),
                    _mm256_add_ps(acc2, acc3),
                ));
                if partial > bound {
                    return partial;
                }
            }
        }
        // Fold the four chains and finish the remaining <32 floats with
        // single-register 8-blocks, then a scalar tail — identically in
        // both CHECK variants, so kept results stay bit-equal to the full
        // kernel.
        let mut acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let chunks = n / 8;
        let mut c = wide * 4;
        while c < chunks {
            let d = _mm256_sub_ps(
                _mm256_loadu_ps(pa.add(c * 8)),
                _mm256_loadu_ps(pb.add(c * 8)),
            );
            acc = _mm256_fmadd_ps(d, d, acc);
            c += 1;
        }
        let mut sum = hsum256(acc);
        for j in chunks * 8..n {
            let d = *a.get_unchecked(j) - *b.get_unchecked(j);
            sum += d * d;
        }
        sum
    }

    /// # Safety
    /// Caller must ensure AVX2 and FMA are available and
    /// `a.len() == b.len()`.
    ///
    /// Same four-chain structure as [`sq_dist_avx2_impl`]; the Gaussian
    /// projection (`m` dots of a `d`-vector per query) is the other half
    /// of the hot path.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot_avx2_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let wide = n / 32;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        for i in 0..wide {
            let j = i * 32;
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(j)), _mm256_loadu_ps(pb.add(j)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(j + 8)),
                _mm256_loadu_ps(pb.add(j + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(j + 16)),
                _mm256_loadu_ps(pb.add(j + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(j + 24)),
                _mm256_loadu_ps(pb.add(j + 24)),
                acc3,
            );
        }
        let mut acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        let chunks = n / 8;
        for c in wide * 4..chunks {
            acc = _mm256_fmadd_ps(
                _mm256_loadu_ps(pa.add(c * 8)),
                _mm256_loadu_ps(pb.add(c * 8)),
                acc,
            );
        }
        let mut sum = hsum256(acc);
        for j in chunks * 8..n {
            sum += *a.get_unchecked(j) * *b.get_unchecked(j);
        }
        sum
    }
}

// ---------------------------------------------------------------------------
// aarch64: NEON (baseline — no runtime detection needed).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::CHECK_STRIDE;
    use core::arch::aarch64::*;

    /// Horizontal sum in the scalar kernel's `(l0 + l1) + (l2 + l3)` order
    /// (so NEON stays bit-identical to scalar; `vaddvq_f32` would not be).
    ///
    /// # Safety
    /// Requires NEON, which is the aarch64 baseline.
    #[inline(always)]
    unsafe fn hsum(v: float32x4_t) -> f32 {
        (vgetq_lane_f32::<0>(v) + vgetq_lane_f32::<1>(v))
            + (vgetq_lane_f32::<2>(v) + vgetq_lane_f32::<3>(v))
    }

    /// # Safety
    /// Caller must ensure `a.len() == b.len()`.
    #[inline]
    pub(super) unsafe fn sq_dist_neon_impl<const CHECK: bool>(
        a: &[f32],
        b: &[f32],
        bound: f32,
    ) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 4;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i < chunks {
            let d = vsubq_f32(vld1q_f32(pa.add(i * 4)), vld1q_f32(pb.add(i * 4)));
            // vmulq + vaddq (not vfmaq): an FMA would round differently
            // from the scalar kernel and break bit-identicality.
            acc = vaddq_f32(acc, vmulq_f32(d, d));
            i += 1;
            if CHECK && i.is_multiple_of(CHECK_STRIDE) {
                let partial = hsum(acc);
                if partial > bound {
                    return partial;
                }
            }
        }
        let mut sum = hsum(acc);
        for j in chunks * 4..n {
            let d = *a.get_unchecked(j) - *b.get_unchecked(j);
            sum += d * d;
        }
        sum
    }

    /// # Safety
    /// Caller must ensure `a.len() == b.len()`.
    #[inline]
    pub(super) unsafe fn dot_neon_impl(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let chunks = n / 4;
        let pa = a.as_ptr();
        let pb = b.as_ptr();
        let mut acc = vdupq_n_f32(0.0);
        for i in 0..chunks {
            let prod = vmulq_f32(vld1q_f32(pa.add(i * 4)), vld1q_f32(pb.add(i * 4)));
            acc = vaddq_f32(acc, prod);
        }
        let mut sum = hsum(acc);
        for j in chunks * 4..n {
            sum += *a.get_unchecked(j) * *b.get_unchecked(j);
        }
        sum
    }
}

// ---------------------------------------------------------------------------
// Dispatch (callers have already asserted equal lengths).
// ---------------------------------------------------------------------------

#[inline]
pub(crate) fn sq_dist_dispatch(a: &[f32], b: &[f32]) -> f32 {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is the x86-64 baseline.
        SimdLevel::Sse2 => unsafe { x86::sq_dist_sse2_impl::<false>(a, b, f32::INFINITY) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_level()` only returns Avx2Fma after runtime detection.
        SimdLevel::Avx2Fma => unsafe { x86::sq_dist_avx2_impl::<false>(a, b, f32::INFINITY) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is the aarch64 baseline.
        SimdLevel::Neon => unsafe { arm::sq_dist_neon_impl::<false>(a, b, f32::INFINITY) },
        _ => sq_dist_scalar_impl::<false>(a, b, f32::INFINITY),
    }
}

#[inline]
pub(crate) fn sq_dist_within_dispatch(a: &[f32], b: &[f32], bound: f32) -> f32 {
    if bound == f32::INFINITY {
        // Nothing can exceed an infinite bound: skip the periodic checks
        // entirely. The `within` kernels are bit-identical to the full
        // ones when they do not abandon, so this is purely a fast path.
        return sq_dist_dispatch(a, b);
    }
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is the x86-64 baseline.
        SimdLevel::Sse2 => unsafe { x86::sq_dist_sse2_impl::<true>(a, b, bound) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_level()` only returns Avx2Fma after runtime detection.
        SimdLevel::Avx2Fma => unsafe { x86::sq_dist_avx2_impl::<true>(a, b, bound) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is the aarch64 baseline.
        SimdLevel::Neon => unsafe { arm::sq_dist_neon_impl::<true>(a, b, bound) },
        _ => sq_dist_scalar_impl::<true>(a, b, bound),
    }
}

#[inline]
pub(crate) fn dot_dispatch(a: &[f32], b: &[f32]) -> f32 {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is the x86-64 baseline.
        SimdLevel::Sse2 => unsafe { x86::dot_sse2_impl(a, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_level()` only returns Avx2Fma after runtime detection.
        SimdLevel::Avx2Fma => unsafe { x86::dot_avx2_impl(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is the aarch64 baseline.
        SimdLevel::Neon => unsafe { arm::dot_neon_impl(a, b) },
        _ => dot_scalar_impl(a, b),
    }
}

/// Direct access to the individual kernel implementations, bypassing
/// dispatch. This exists for the cross-implementation property tests and
/// the `query_hotpath` bench; production code goes through
/// [`crate::sq_dist`] / [`crate::dot`] / [`crate::sq_dist_within`].
pub mod kernels {
    /// Portable scalar squared distance (the historical kernel).
    pub fn sq_dist_scalar(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "sq_dist: slice length mismatch");
        super::sq_dist_scalar_impl::<false>(a, b, f32::INFINITY)
    }

    /// Portable scalar early-abandoning squared distance.
    pub fn sq_dist_within_scalar(a: &[f32], b: &[f32], bound: f32) -> f32 {
        assert_eq!(a.len(), b.len(), "sq_dist_within: slice length mismatch");
        super::sq_dist_scalar_impl::<true>(a, b, bound)
    }

    /// Portable scalar dot product.
    pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot: slice length mismatch");
        super::dot_scalar_impl(a, b)
    }

    /// SSE2 squared distance (always available on x86-64).
    #[cfg(target_arch = "x86_64")]
    pub fn sq_dist_sse2(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "sq_dist: slice length mismatch");
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { super::x86::sq_dist_sse2_impl::<false>(a, b, f32::INFINITY) }
    }

    /// SSE2 early-abandoning squared distance (always available on x86-64).
    #[cfg(target_arch = "x86_64")]
    pub fn sq_dist_within_sse2(a: &[f32], b: &[f32], bound: f32) -> f32 {
        assert_eq!(a.len(), b.len(), "sq_dist_within: slice length mismatch");
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { super::x86::sq_dist_sse2_impl::<true>(a, b, bound) }
    }

    /// SSE2 dot product (always available on x86-64).
    #[cfg(target_arch = "x86_64")]
    pub fn dot_sse2(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot: slice length mismatch");
        // SAFETY: SSE2 is part of the x86-64 baseline.
        unsafe { super::x86::dot_sse2_impl(a, b) }
    }

    /// AVX2+FMA squared distance.
    ///
    /// # Panics
    /// Panics when the CPU lacks AVX2 or FMA — check
    /// [`super::avx2_fma_available`] first.
    #[cfg(target_arch = "x86_64")]
    pub fn sq_dist_avx2(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "sq_dist: slice length mismatch");
        assert!(super::avx2_fma_available(), "AVX2+FMA not available");
        // SAFETY: availability asserted above.
        unsafe { super::x86::sq_dist_avx2_impl::<false>(a, b, f32::INFINITY) }
    }

    /// AVX2+FMA early-abandoning squared distance.
    ///
    /// # Panics
    /// Panics when the CPU lacks AVX2 or FMA — check
    /// [`super::avx2_fma_available`] first.
    #[cfg(target_arch = "x86_64")]
    pub fn sq_dist_within_avx2(a: &[f32], b: &[f32], bound: f32) -> f32 {
        assert_eq!(a.len(), b.len(), "sq_dist_within: slice length mismatch");
        assert!(super::avx2_fma_available(), "AVX2+FMA not available");
        // SAFETY: availability asserted above.
        unsafe { super::x86::sq_dist_avx2_impl::<true>(a, b, bound) }
    }

    /// AVX2+FMA dot product.
    ///
    /// # Panics
    /// Panics when the CPU lacks AVX2 or FMA — check
    /// [`super::avx2_fma_available`] first.
    #[cfg(target_arch = "x86_64")]
    pub fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot: slice length mismatch");
        assert!(super::avx2_fma_available(), "AVX2+FMA not available");
        // SAFETY: availability asserted above.
        unsafe { super::x86::dot_avx2_impl(a, b) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_cached_and_consistent() {
        let first = active_level();
        for _ in 0..4 {
            assert_eq!(active_level(), first);
        }
    }

    #[test]
    fn dispatch_matches_scalar_within_tolerance() {
        // Bit-identical for scalar/SSE2/NEON; AVX2 only within tolerance
        // (8 lanes + FMA round differently). The exact claims live in
        // tests/kernel_parity.rs.
        for len in [0usize, 1, 3, 4, 7, 15, 16, 33, 100] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.25 - 4.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32) * -0.5 + 2.0).collect();
            let scalar = kernels::sq_dist_scalar(&a, &b);
            let fast = sq_dist_dispatch(&a, &b);
            let tol = 1e-5f32 * scalar.max(1.0);
            assert!(
                (fast - scalar).abs() <= tol,
                "len {len}: dispatch {fast} vs scalar {scalar}"
            );
        }
    }

    #[test]
    fn within_never_underreports() {
        // Abandoned or not, the returned value is on the same side of the
        // bound as the true squared distance.
        for len in [1usize, 8, 16, 33, 100, 257] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32).sin()).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32).cos()).collect();
            let full = sq_dist_dispatch(&a, &b);
            for bound in [0.0f32, full * 0.5, full, full * 2.0, f32::INFINITY] {
                let got = sq_dist_within_dispatch(&a, &b, bound);
                assert_eq!(got > bound, full > bound, "len {len} bound {bound}");
                if got <= bound {
                    assert_eq!(got, full, "kept result must be exact");
                }
            }
        }
    }
}
