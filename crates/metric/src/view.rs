//! Borrowed row-major matrix views.

use crate::PointId;

/// A borrowed view over `n` points of dimensionality `dim` stored row-major
/// in a flat `&[f32]`.
///
/// Index structures (PM-tree, R-tree) are built over projected points owned
/// by the enclosing index; they store a `MatrixView`-compatible layout and
/// borrow it per operation, avoiding copies of the point payloads.
#[derive(Clone, Copy, Debug)]
pub struct MatrixView<'a> {
    data: &'a [f32],
    dim: usize,
}

impl<'a> MatrixView<'a> {
    /// Wraps a flat buffer.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the buffer length is not a multiple of `dim`.
    pub fn new(data: &'a [f32], dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            data.len().is_multiple_of(dim),
            "flat buffer length {} is not a multiple of dim {}",
            data.len(),
            dim
        );
        Self { data, dim }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when the view holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality of every point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Borrows point `id`.
    #[inline]
    pub fn point_id(&self, id: PointId) -> &'a [f32] {
        self.point(id as usize)
    }

    /// Iterates over all points in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &'a [f32]> + 'a {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn as_flat(&self) -> &'a [f32] {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_indexing() {
        let buf = [1.0f32, 2.0, 3.0, 4.0];
        let v = MatrixView::new(&buf, 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.dim(), 2);
        assert_eq!(v.point(0), &[1.0, 2.0]);
        assert_eq!(v.point_id(1), &[3.0, 4.0]);
        assert!(!v.is_empty());
        assert_eq!(v.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn view_rejects_ragged() {
        let buf = [1.0f32, 2.0, 3.0];
        let _ = MatrixView::new(&buf, 2);
    }
}
