//! lint: hot-path
//!
//! Bounded top-k selection by distance.

use crate::PointId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(distance, id)` pair ordered by distance (ties broken by id so that
/// orderings are total and runs are deterministic).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Distance to the query (any non-NaN `f32`; the workspace uses plain
    /// Euclidean distances).
    pub dist: f32,
    /// Identifier of the point inside its dataset.
    pub id: PointId,
}

impl Neighbor {
    /// Creates a neighbor entry.
    #[inline]
    pub fn new(dist: f32, id: PointId) -> Self {
        debug_assert!(!dist.is_nan(), "NaN distances are not orderable");
        Self { dist, id }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded max-heap keeping the `k` smallest-distance neighbors seen so far.
///
/// This is the collector every query algorithm in the workspace funnels
/// results through: push all candidates, then call [`TopK::into_sorted_vec`].
///
/// ```
/// use pm_lsh_metric::TopK;
/// let mut t = TopK::new(2);
/// t.push(3.0, 0);
/// t.push(1.0, 1);
/// t.push(2.0, 2);
/// let out = t.into_sorted_vec();
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].id, 1);
/// assert_eq!(out[1].id, 2);
/// ```
#[derive(Clone, Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// A collector for the `k` nearest neighbors. `k` must be positive.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it is among the best `k` so far.
    /// Returns `true` when the candidate was kept.
    #[inline]
    pub fn push(&mut self, dist: f32, id: PointId) -> bool {
        let cand = Neighbor::new(dist, id);
        if self.heap.len() < self.k {
            self.heap.push(cand);
            true
        } else if self.heap.peek().is_some_and(|worst| cand < *worst) {
            self.heap.pop();
            self.heap.push(cand);
            true
        } else {
            false
        }
    }

    /// Current number of stored neighbors (`<= k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no neighbor has been kept yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` once `k` neighbors are stored.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.k
    }

    /// The current k-th smallest distance, or `f32::INFINITY` while fewer
    /// than `k` neighbors are stored. Queries use this as a shrinking
    /// verification bound.
    #[inline]
    pub fn kth_dist(&self) -> f32 {
        if self.is_full() {
            self.heap.peek().map_or(f32::INFINITY, |w| w.dist)
        } else {
            f32::INFINITY
        }
    }

    /// Consumes the collector, returning neighbors sorted by ascending
    /// distance (ties by id).
    pub fn into_sorted_vec(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Reconfigures the collector for a fresh query, keeping the heap's
    /// allocation — the reuse hook behind `pm_lsh_core`'s `QueryContext`.
    /// `k` must be positive.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "k must be positive");
        self.k = k;
        self.heap.clear();
    }

    /// Empties the collector into `out` (cleared first) in ascending
    /// `(distance, id)` order — the same sequence as
    /// [`TopK::into_sorted_vec`], but without consuming the heap's
    /// allocation, so a reused collector stays allocation-free once `out`'s
    /// capacity suffices.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Neighbor>) {
        out.clear();
        // BinaryHeap pops worst-first; reverse for ascending order. Ids are
        // unique, so the (dist, id) order is total and this matches
        // into_sorted_vec exactly.
        while let Some(n) = self.heap.pop() {
            out.push(n);
        }
        out.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.push(*d, i as PointId);
        }
        let out = t.into_sorted_vec();
        let dists: Vec<f32> = out.iter().map(|n| n.dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn kth_dist_shrinks() {
        let mut t = TopK::new(2);
        assert_eq!(t.kth_dist(), f32::INFINITY);
        t.push(10.0, 0);
        assert_eq!(t.kth_dist(), f32::INFINITY); // not full yet
        t.push(4.0, 1);
        assert_eq!(t.kth_dist(), 10.0);
        assert!(t.push(3.0, 2));
        assert_eq!(t.kth_dist(), 4.0);
        assert!(!t.push(9.0, 3)); // rejected
    }

    #[test]
    fn ties_broken_by_id() {
        let mut t = TopK::new(2);
        t.push(1.0, 7);
        t.push(1.0, 3);
        t.push(1.0, 5); // id 7 should be evicted (largest of equal dists)
        let out = t.into_sorted_vec();
        let ids: Vec<PointId> = out.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 5]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = TopK::new(4);
        assert!(t.is_empty());
        t.push(1.0, 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_full());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = TopK::new(0);
    }

    #[test]
    fn drain_matches_into_sorted_vec() {
        let dists = [5.0f32, 1.0, 4.0, 2.0, 3.0, 2.0];
        let mut a = TopK::new(3);
        let mut b = TopK::new(3);
        for (i, &d) in dists.iter().enumerate() {
            a.push(d, i as PointId);
            b.push(d, i as PointId);
        }
        let mut drained = Vec::new();
        a.drain_sorted_into(&mut drained);
        assert_eq!(drained, b.into_sorted_vec());
        assert!(a.is_empty(), "drain must leave the collector empty");
    }

    #[test]
    fn reset_reuses_across_queries() {
        let mut t = TopK::new(2);
        t.push(1.0, 0);
        t.push(2.0, 1);
        let mut out = Vec::new();
        t.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 2);
        t.reset(1);
        t.push(9.0, 5);
        t.push(3.0, 6);
        t.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 6);
    }
}
