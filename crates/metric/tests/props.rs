//! Property tests for the distance kernels and top-k collector.

use pm_lsh_metric::{euclidean, sq_dist, Dataset, TopK};
use proptest::prelude::*;

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1..max_len).prop_flat_map(|len| {
        (
            proptest::collection::vec(-100.0f32..100.0, len),
            proptest::collection::vec(-100.0f32..100.0, len),
        )
    })
}

proptest! {
    #[test]
    fn sq_dist_matches_naive((a, b) in vec_pair(64)) {
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let fast = sq_dist(&a, &b);
        let tol = 1e-3f32 * naive.abs().max(1.0);
        prop_assert!((fast - naive).abs() <= tol, "fast={fast} naive={naive}");
    }

    #[test]
    fn distance_is_symmetric((a, b) in vec_pair(48)) {
        prop_assert_eq!(sq_dist(&a, &b), sq_dist(&b, &a));
    }

    #[test]
    fn triangle_inequality(
        (a, b) in vec_pair(16),
        c in proptest::collection::vec(-100.0f32..100.0, 16),
    ) {
        // restrict to the common length so all three slices agree
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        let ab = euclidean(a, b);
        let bc = euclidean(b, c);
        let ac = euclidean(a, c);
        prop_assert!(ac <= ab + bc + 1e-3 * (ab + bc).max(1.0));
    }

    #[test]
    fn topk_equals_full_sort(dists in proptest::collection::vec(0.0f32..1000.0, 1..200), k in 1usize..20) {
        let mut t = TopK::new(k);
        for (i, &d) in dists.iter().enumerate() {
            t.push(d, i as u32);
        }
        let got: Vec<f32> = t.into_sorted_vec().iter().map(|n| n.dist).collect();
        let mut want = dists.clone();
        want.sort_by(|x, y| x.partial_cmp(y).unwrap());
        want.truncate(k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn dataset_gather_preserves_rows(
        rows in proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 4), 1..32),
    ) {
        let ds = Dataset::from_rows(rows.clone());
        let ids: Vec<u32> = (0..rows.len() as u32).rev().collect();
        let rev = ds.gather(&ids);
        for (j, &id) in ids.iter().enumerate() {
            prop_assert_eq!(rev.point(j), ds.point(id as usize));
        }
    }
}
