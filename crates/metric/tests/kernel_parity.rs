//! Cross-implementation property tests for the SIMD kernel matrix.
//!
//! Pins the numerical contract of `pm_lsh_metric::simd`:
//!
//! * scalar and SSE2 (and NEON, on aarch64 hardware) are **bit-identical**,
//! * AVX2+FMA agrees with scalar within a relative tolerance,
//! * every `sq_dist_within` variant returns the exact full kernel value
//!   whenever it does not abandon, lands on the same side of the bound as
//!   the full kernel, and treats a partial sum *equal* to the bound as
//!   "keep going" (strict-inequality abandonment).
//!
//! Lengths cover every remainder branch of the 4- and 8-lane loops plus
//! the paper's real dimensionalities (Audio-ish 100/960 and Trevi's 4096).

use pm_lsh_metric::simd::{self, kernels};
use pm_lsh_metric::{dot, sq_dist, sq_dist_within};
use proptest::prelude::*;

const DIMS: &[usize] = &[1, 2, 3, 4, 7, 8, 15, 16, 33, 100, 960, 4096];

/// Deterministic splitmix64-based vector fill, so each proptest case only
/// has to draw a seed (the shim cannot generate 4096-long vectors per dim
/// without dependent strategies for every entry of `DIMS`).
fn fill(mut state: u64, len: usize, scale: f32) -> Vec<f32> {
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (((z >> 40) as f32) / ((1u64 << 24) as f32) * 2.0 - 1.0) * scale
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn implementations_agree_across_lengths(
        seed in 0u64..u64::MAX,
        scale in 0.1f32..50.0,
    ) {
        for (di, &d) in DIMS.iter().enumerate() {
            let a = fill(seed ^ ((di as u64) << 1), d, scale);
            let b = fill(seed ^ (((di as u64) << 1) | 1), d, scale);
            let sq_scalar = kernels::sq_dist_scalar(&a, &b);
            let dot_scalar = kernels::dot_scalar(&a, &b);

            #[cfg(target_arch = "x86_64")]
            {
                // SSE2 promises bit-identical results to scalar.
                prop_assert_eq!(
                    kernels::sq_dist_sse2(&a, &b).to_bits(),
                    sq_scalar.to_bits(),
                    "sse2 sq_dist diverged from scalar at d={}", d
                );
                prop_assert_eq!(
                    kernels::dot_sse2(&a, &b).to_bits(),
                    dot_scalar.to_bits(),
                    "sse2 dot diverged from scalar at d={}", d
                );
                // AVX2+FMA only promises tolerance (8 lanes + fused rounding).
                if simd::avx2_fma_available() {
                    let sq_avx = kernels::sq_dist_avx2(&a, &b);
                    let sq_tol = 1e-5f32 * sq_scalar.abs().max(1.0);
                    prop_assert!(
                        (sq_avx - sq_scalar).abs() <= sq_tol,
                        "avx2 sq_dist {} vs scalar {} at d={}", sq_avx, sq_scalar, d
                    );
                    let dot_avx = kernels::dot_avx2(&a, &b);
                    // dot has cancellation, so tolerate relative-to-magnitude.
                    let mag: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
                    let dot_tol = 1e-5f32 * mag.max(1.0);
                    prop_assert!(
                        (dot_avx - dot_scalar).abs() <= dot_tol,
                        "avx2 dot {} vs scalar {} at d={}", dot_avx, dot_scalar, d
                    );
                }
            }

            // The dispatched entry points agree with themselves: a disabled
            // bound is exactly the full kernel, whatever level is active.
            prop_assert_eq!(
                sq_dist_within(&a, &b, f32::INFINITY).to_bits(),
                sq_dist(&a, &b).to_bits(),
                "within(INF) != full at d={}", d
            );
            // And dot/sq_dist stay within tolerance of scalar end to end.
            let sq_fast = sq_dist(&a, &b);
            prop_assert!(
                (sq_fast - sq_scalar).abs() <= 1e-5f32 * sq_scalar.abs().max(1.0)
            );
            let dot_fast = dot(&a, &b);
            let mag: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
            prop_assert!((dot_fast - dot_scalar).abs() <= 1e-5f32 * mag.max(1.0));
        }
    }

    #[test]
    fn early_abandon_contract_holds(
        seed in 0u64..u64::MAX,
        frac in 0.0f64..1.3,
    ) {
        for (di, &d) in DIMS.iter().enumerate() {
            let a = fill(seed ^ ((di as u64) << 8), d, 4.0);
            let b = fill(seed ^ (((di as u64) << 8) | 7), d, 4.0);

            // Each implementation is checked against ITS OWN full value
            // (AVX2's full value differs from scalar's in the last ulps).
            type Pair = (fn(&[f32], &[f32]) -> f32, fn(&[f32], &[f32], f32) -> f32);
            let mut impls: Vec<(&str, Pair)> = vec![
                ("scalar", (kernels::sq_dist_scalar, kernels::sq_dist_within_scalar)),
                ("dispatch", (sq_dist, sq_dist_within)),
            ];
            #[cfg(target_arch = "x86_64")]
            {
                impls.push(("sse2", (kernels::sq_dist_sse2, kernels::sq_dist_within_sse2)));
                if simd::avx2_fma_available() {
                    impls.push(("avx2", (kernels::sq_dist_avx2, kernels::sq_dist_within_avx2)));
                }
            }

            for (name, (full_fn, within_fn)) in impls {
                let full = full_fn(&a, &b);
                let bound = (full as f64 * frac) as f32;
                let got = within_fn(&a, &b, bound);
                // Same side of the bound as the full kernel...
                prop_assert_eq!(
                    got > bound,
                    full > bound,
                    "{}: within={} full={} bound={} d={}", name, got, full, bound, d
                );
                // ...and bit-exact whenever the candidate is kept.
                if got <= bound {
                    prop_assert_eq!(
                        got.to_bits(), full.to_bits(),
                        "{}: kept value not exact at d={}", name, d
                    );
                }
                // Strict inequality at the boundary: a bound exactly equal
                // to the full distance must NOT abandon (every partial sum
                // is <= full, so none strictly exceeds the bound).
                let at_boundary = within_fn(&a, &b, full);
                prop_assert_eq!(
                    at_boundary.to_bits(), full.to_bits(),
                    "{}: abandoned at an exactly-equal bound, d={}", name, d
                );
            }
        }
    }
}

/// The strict-abandonment boundary with the partial sum pinned mid-vector:
/// all mass sits in the first 4-lane block, so every intermediate check
/// sees `partial == bound` and must keep accumulating the zero tail.
#[test]
fn partial_sum_equal_to_bound_does_not_abandon() {
    for &d in &[17usize, 33, 100, 960] {
        let mut a = vec![0.0f32; d];
        let b = vec![0.0f32; d];
        a[0] = 3.0;
        a[1] = 4.0;
        let full = sq_dist(&a, &b); // exactly 25.0, reached by element 2
        assert_eq!(full, 25.0);
        assert_eq!(sq_dist_within(&a, &b, 25.0), 25.0, "d={d}");
        assert_eq!(kernels::sq_dist_within_scalar(&a, &b, 25.0), 25.0, "d={d}");
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(kernels::sq_dist_within_sse2(&a, &b, 25.0), 25.0, "d={d}");
            if simd::avx2_fma_available() {
                assert_eq!(kernels::sq_dist_within_avx2(&a, &b, 25.0), 25.0, "d={d}");
            }
        }
        // One ulp below the mass: must abandon (or at least report > bound).
        let below = 25.0f32.next_down();
        assert!(sq_dist_within(&a, &b, below) > below, "d={d}");
    }
}
