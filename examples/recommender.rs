//! Embedding-based recommendation — the paper's recommendation motivation
//! (Section 1) on a Deep-like dataset of item embeddings.
//!
//! A user profile is the centroid of recently liked items; serving a
//! recommendation slate is a (c, k)-ANN query around that profile. The
//! example also shows the time/quality dial: the same index answers with a
//! tighter or looser approximation ratio per query (`query_with_c`).
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use pm_lsh::prelude::*;

fn main() {
    // Deep stand-in: 256-dimensional item embeddings.
    let generator = PaperDataset::Deep.generator(Scale::Smoke);
    let items = generator.dataset();
    let n = items.len();
    println!("item catalog: {n} embeddings in R^{}", items.dim());

    let index = PmLsh::build(items, PmLshParams::paper_defaults());

    // Simulate 20 users; each likes a handful of items from one taste
    // cluster (consecutive ids share clusters under the generator).
    let mut rng = Rng::new(0x5eed);
    let k = 10;
    let mut served = 0usize;
    let mut liked_excluded = true;
    let start = std::time::Instant::now();
    for _user in 0..20 {
        let anchor = rng.below(n);
        let liked: Vec<usize> = (0..5).map(|j| (anchor + j * 40) % n).collect();
        // profile = centroid of liked items
        let dim = index.data().dim();
        let mut profile = vec![0.0f32; dim];
        for &item in &liked {
            for (p, &v) in profile.iter_mut().zip(index.data().point(item)) {
                *p += v / liked.len() as f32;
            }
        }

        let result = index.query(&profile, k + liked.len());
        let slate: Vec<PointId> = result
            .neighbors
            .iter()
            .map(|nb| nb.id)
            .filter(|id| !liked.contains(&(*id as usize)))
            .take(k)
            .collect();
        served += slate.len();
        if slate.iter().any(|id| liked.contains(&(*id as usize))) {
            liked_excluded = false;
        }
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "served {} recommendations over 20 users in {:.1} ms ({:.2} ms/slate)",
        served,
        elapsed,
        elapsed / 20.0
    );
    assert!(liked_excluded, "slates must not repeat liked items");
    assert_eq!(served, 20 * k);

    // The latency/quality dial: compare candidate work at c = 1.2 vs 2.0.
    let profile = index.data().point(0).to_vec();
    let tight = index.query_with_c(&profile, k, 1.2);
    let loose = index.query_with_c(&profile, k, 2.0);
    println!(
        "quality dial: c = 1.2 verified {} candidates, c = 2.0 verified {}",
        tight.stats.candidates_verified, loose.stats.candidates_verified
    );
    assert!(tight.stats.candidates_verified >= loose.stats.candidates_verified);
    println!("ok: tighter guarantees cost more verification, as Eq. 10 predicts");
}
