//! Near-duplicate image detection — the paper's de-duplication motivation
//! (Section 1) on a Cifar-like feature dataset.
//!
//! We plant near-duplicates (small perturbations of existing "images") and
//! use PM-LSH's `(r, c)`-ball-cover query (Algorithm 1) to flag them: a
//! duplicate is any point whose ball of radius `r_dup` around the probe is
//! non-empty. The BC query is exactly the decision primitive the paper
//! builds the ANN query from.
//!
//! ```text
//! cargo run --release --example image_dedup
//! ```

use pm_lsh::prelude::*;

fn main() {
    // Cifar stand-in: 1024-dimensional "image features".
    let generator = PaperDataset::Cifar.generator(Scale::Smoke);
    let catalog = generator.dataset();
    println!("catalog: {} images in R^{}", catalog.len(), catalog.dim());

    // Estimate the duplicate radius from the data: well below the typical
    // nearest-neighbor distance.
    let probe_truth = exact_knn(catalog.view(), catalog.point(0), 2);
    let nn_dist = probe_truth[1].dist; // [0] is the point itself
    let r_dup = (nn_dist * 0.25) as f64;
    println!(
        "typical NN distance {:.2}; duplicate radius {:.2}",
        nn_dist, r_dup
    );

    let index = PmLsh::build(catalog, PmLshParams::paper_defaults());

    // Wave of incoming uploads: half are perturbed copies of catalog images
    // (true duplicates), half are fresh images.
    let mut rng = Rng::new(0xded0);
    let fresh = generator.queries(50);
    let mut uploads: Vec<(Vec<f32>, bool)> = Vec::new();
    for i in 0..50 {
        let mut copy = index.data().point(i * 7).to_vec();
        for v in copy.iter_mut() {
            *v += rng.normal_f32() * 0.002; // tiny jitter: a re-encode
        }
        uploads.push((copy, true));
        uploads.push((fresh.point(i).to_vec(), false));
    }

    let mut true_pos = 0usize;
    let mut false_pos = 0usize;
    let mut false_neg = 0usize;
    let start = std::time::Instant::now();
    for (upload, is_dup) in &uploads {
        let verdict = index.query_bc(upload, r_dup);
        match (verdict.is_some(), is_dup) {
            (true, true) => true_pos += 1,
            (true, false) => false_pos += 1,
            (false, true) => false_neg += 1,
            (false, false) => {}
        }
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;

    println!(
        "screened {} uploads in {:.1} ms ({:.2} ms each)",
        uploads.len(),
        elapsed,
        elapsed / uploads.len() as f64
    );
    println!("duplicates caught: {true_pos}/50, missed: {false_neg}, false alarms: {false_pos}");
    assert!(
        true_pos >= 45,
        "BC query should catch nearly all planted duplicates"
    );
    assert!(
        false_pos <= 5,
        "fresh images should rarely sit within c·r of the catalog"
    );
    println!("ok: ball-cover screening behaves as Lemma 5 promises");
}
