//! Quick start: build a PM-LSH index over synthetic data and answer
//! (c, k)-ANN queries, comparing against the exact answer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pm_lsh::prelude::*;

fn main() {
    // A seeded stand-in for the paper's Audio dataset (192 dimensions).
    // Scale::Smoke keeps this example under a second; use Scale::Bench for
    // the full 54k points.
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(10);
    println!("dataset: {} points in R^{}", data.len(), data.dim());

    // Exact ground truth for quality reporting.
    let truth = exact_knn_batch(data.view(), queries.view(), 10, 0);

    // Build PM-LSH at the paper's operating point (m = 15 hash functions,
    // c = 1.5, PM-tree with 5 pivots, β = 0.2809).
    let start = std::time::Instant::now();
    let index = PmLsh::build(data, PmLshParams::paper_defaults());
    println!("built in {:.1} ms", start.elapsed().as_secs_f64() * 1e3);
    println!(
        "derived constants: t = {:.3}, alpha2 = {:.4}, beta = {:.4}",
        index.derived().t,
        index.derived().alpha2,
        index.derived().beta
    );

    let mut total_recall = 0.0;
    let mut total_ratio = 0.0;
    let start = std::time::Instant::now();
    for (qi, q) in queries.iter().enumerate() {
        let result = index.query(q, 10);
        total_recall += recall(&result.neighbors, &truth[qi]);
        total_ratio += overall_ratio(&result.neighbors, &truth[qi]);
        if qi == 0 {
            println!(
                "query 0: {} candidates verified over {} rounds, nn dist {:.3} (exact {:.3})",
                result.stats.candidates_verified,
                result.stats.rounds,
                result.neighbors[0].dist,
                truth[0][0].dist
            );
        }
    }
    let n = queries.len() as f64;
    println!(
        "avg query time {:.2} ms | recall@10 {:.3} | overall ratio {:.4}",
        start.elapsed().as_secs_f64() * 1e3 / n,
        total_recall / n,
        total_ratio / n
    );
}
