//! Side-by-side comparison of all six algorithms from the paper's
//! evaluation on one dataset — a miniature Table 4.
//!
//! ```text
//! cargo run --release --example compare_methods [audio|deep|nus|mnist|gist|cifar|trevi]
//! ```

use pm_lsh::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cifar".to_string());
    let dataset = match which.to_lowercase().as_str() {
        "audio" => PaperDataset::Audio,
        "deep" => PaperDataset::Deep,
        "nus" => PaperDataset::Nus,
        "mnist" => PaperDataset::Mnist,
        "gist" => PaperDataset::Gist,
        "cifar" => PaperDataset::Cifar,
        "trevi" => PaperDataset::Trevi,
        other => panic!("unknown dataset '{other}'"),
    };

    let k = 10;
    let generator = dataset.generator(Scale::Smoke);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(20);
    println!(
        "{}: {} points in R^{}, {} queries, k = {k}\n",
        dataset.name(),
        data.len(),
        data.dim(),
        queries.len()
    );
    let truth = exact_knn_batch(data.view(), queries.view(), k, 0);

    let algos: Vec<Box<dyn AnnIndex>> = vec![
        Box::new(PmLsh::build(data.clone(), PmLshParams::paper_defaults())),
        Box::new(Srs::build(data.clone(), SrsParams::default())),
        Box::new(Qalsh::build(data.clone(), QalshParams::default())),
        Box::new(MultiProbe::build(data.clone(), MultiProbeParams::default())),
        Box::new(RLsh::build(data.clone(), PmLshParams::paper_defaults())),
        Box::new(LScan::build(data.clone(), LScanParams::default())),
    ];

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}",
        "algorithm", "ms/query", "recall", "ratio", "candidates"
    );
    for algo in &algos {
        let mut total_recall = 0.0;
        let mut total_ratio = 0.0;
        let mut total_cand = 0usize;
        let start = Instant::now();
        for (qi, q) in queries.iter().enumerate() {
            let res = algo.query(q, k);
            total_recall += recall(&res.neighbors, &truth[qi]);
            total_ratio += overall_ratio(&res.neighbors, &truth[qi]);
            total_cand += res.candidates_verified;
        }
        let nq = queries.len() as f64;
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.4} {:>12.0}",
            algo.name(),
            start.elapsed().as_secs_f64() * 1e3 / nq,
            total_recall / nq,
            total_ratio / nq,
            total_cand as f64 / nq
        );
    }
    println!(
        "\n(paper shape: PM-LSH leads on time and quality; LScan's recall ≈ its scan fraction)"
    );
}
