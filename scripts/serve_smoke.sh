#!/usr/bin/env bash
# End-to-end smoke of the multi-index TCP serving layer: one `pmlsh serve`
# process with two attached smoke datasets, driven over a raw TCP
# connection (bash /dev/tcp) through USE / QUERY / AUTH / REINDEX / QUIT.
# CI runs this after the release build; locally:
#
#   PMLSH_BIN=target/debug/pmlsh bash scripts/serve_smoke.sh
set -euo pipefail

BIN=${PMLSH_BIN:-target/release/pmlsh}
PORT=${PMLSH_SMOKE_PORT:-7979}
TOKEN=smoke-token
TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

echo "== generating smoke datasets"
"$BIN" gen --dataset audio --scale smoke --out "$TMP/audio.fvecs" \
  --queries "$TMP/audio_q.fvecs" --nq 8
"$BIN" gen --dataset cifar --scale smoke --out "$TMP/cifar.fvecs"
# A second audio-shaped file to REINDEX onto (same dimensionality).
"$BIN" gen --dataset audio --scale smoke --out "$TMP/audio2.fvecs"

echo "== starting pmlsh serve (two indexes, auth-gated mutating verbs)"
"$BIN" serve --data "audio=$TMP/audio.fvecs,cifar=$TMP/cifar.fvecs" \
  --port "$PORT" --threads 2 --auth-token "$TOKEN" &
SERVE_PID=$!

wait_ready() { # blocks until the serve process accepts connections
  for _ in $(seq 1 120); do
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      echo "FAIL: serve process died during startup" >&2
      exit 1
    fi
    if (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
      return 0
    fi
    sleep 1
  done
  echo "FAIL: server never accepted a connection" >&2
  exit 1
}

echo "== waiting for the server to accept connections"
wait_ready

# One persistent connection for the whole scripted session (auth and the
# current index are per-connection state).
exec 3<>"/dev/tcp/127.0.0.1/$PORT"

req() { # req <request-line> -> prints the one reply line
  printf '%s\n' "$1" >&3
  local reply
  IFS= read -r reply <&3
  printf '%s\n' "${reply%$'\r'}"
}

expect() { # expect <request-line> <reply-glob>
  local got
  got=$(req "$1")
  case "$got" in
    $2) printf 'ok: %-18s -> %s\n' "${1%% *}" "$got" ;;
    *)
      echo "FAIL: '$1' -> '$got' (wanted '$2')" >&2
      exit 1
      ;;
  esac
}

# Builds a `QUERY <k> <0.25 x dim>` line for the current index by reading
# its dimensionality off INDEXINFO — no hardcoded dataset shapes.
query_line() {
  local dim
  dim=$(req "INDEXINFO" | sed -n 's/.* dim=\([0-9]*\).*/\1/p')
  [ -n "$dim" ] || { echo "FAIL: could not parse dim from INDEXINFO" >&2; exit 1; }
  awk -v d="$dim" 'BEGIN{printf "QUERY 3"; for(i=0;i<d;i++) printf " 0.25"; print ""}'
}

echo "== driving the protocol"
expect "PING" "PONG"
expect "LISTINDEXES" "INDEXES audio,cifar"
expect "INDEXINFO" "INDEXINFO name=audio points=* dim=*"
expect "$(query_line)" "OK *:*"
expect "USE cifar" "OK using cifar"
expect "INDEXINFO" "INDEXINFO name=cifar points=* dim=*"
expect "$(query_line)" "OK *:*"
expect "STATS" "STATS index=cifar queries=1 *"

echo "== auth gating"
expect "USE audio" "OK using audio"
expect "REINDEX $TMP/audio2.fvecs" "ERR authentication required*"
expect "AUTH wrong-token" "ERR bad token"
expect "AUTH $TOKEN" "OK authenticated"
expect "REINDEX $TMP/audio2.fvecs" "OK index=audio epoch=1 *"
expect "INDEXINFO" "INDEXINFO name=audio *epoch=1 *"
expect "$(query_line)" "OK *:*"

echo "== mutation churn (INSERT / QUERY / DELETE / QUERY)"
# INSERT a vector, prove the very next QUERY returns it at distance 0
# (no reindex), DELETE it, prove the same QUERY no longer returns it —
# with the epoch observable through INDEXINFO at every step.
DIM=$(req "INDEXINFO" | sed -n 's/.* dim=\([0-9]*\).*/\1/p')
[ -n "$DIM" ] || { echo "FAIL: could not parse dim for churn" >&2; exit 1; }
INSERT_LINE=$(awk -v d="$DIM" 'BEGIN{printf "INSERT"; for(i=0;i<d;i++) printf " 0.125"; print ""}')
PROBE_LINE=$(awk -v d="$DIM" 'BEGIN{printf "QUERY 1"; for(i=0;i<d;i++) printf " 0.125"; print ""}')
REPLY=$(req "$INSERT_LINE")
case "$REPLY" in
  "OK id="*) printf 'ok: %-18s -> %s\n' "INSERT" "$REPLY" ;;
  *) echo "FAIL: INSERT -> '$REPLY'" >&2; exit 1 ;;
esac
NEW_ID=${REPLY#OK id=}; NEW_ID=${NEW_ID%% *}
expect "INDEXINFO" "INDEXINFO name=audio *epoch=2 *"
expect "$PROBE_LINE" "OK $NEW_ID:0*"
expect "DELETE $NEW_ID" "OK deleted $NEW_ID epoch=3 *"
expect "INDEXINFO" "INDEXINFO name=audio *epoch=3 *"
GONE=$(req "$PROBE_LINE")
case "$GONE" in
  "OK $NEW_ID:"*)
    echo "FAIL: deleted id $NEW_ID still returned: '$GONE'" >&2
    exit 1
    ;;
  "OK "*) printf 'ok: %-18s -> deleted id gone (%s)\n' "QUERY" "$GONE" ;;
  *) echo "FAIL: post-delete QUERY -> '$GONE'" >&2; exit 1 ;;
esac
expect "DELETE $NEW_ID" "ERR unknown point id $NEW_ID"

echo "== BATCH: amortized write path (one epoch bump per batch)"
# Three ops — two inserts and a delete of the id the first insert is
# about to receive (ids are assigned sequentially and never reused, so
# that's NEW_ID+1; ops apply in order against the evolving clone) — must
# land as ONE publication: epoch 3 -> 4, not 3 -> 6.
BATCH_INSERT=$(awk -v d="$DIM" 'BEGIN{printf "INSERT"; for(i=0;i<d;i++) printf " 0.375"; print ""}')
POINTS_BEFORE=$(req "INDEXINFO" | sed -n 's/.* points=\([0-9]*\).*/\1/p')
[ -n "$POINTS_BEFORE" ] || { echo "FAIL: could not parse points for BATCH" >&2; exit 1; }
printf 'BATCH 3\n%s\n%s\nDELETE %d\n' "$BATCH_INSERT" "$BATCH_INSERT" "$((NEW_ID + 1))" >&3
IFS= read -r REPLY <&3; REPLY=${REPLY%$'\r'}
case "$REPLY" in
  "OK applied=3 failed=0 epoch=4 points=$((POINTS_BEFORE + 1))")
    printf 'ok: %-18s -> %s\n' "BATCH" "$REPLY" ;;
  *) echo "FAIL: BATCH -> '$REPLY'" >&2; exit 1 ;;
esac
expect "INDEXINFO" "INDEXINFO name=audio *epoch=4 *"

# Semantic failures poison only their own op: the unknown delete becomes
# a FAIL line after the summary, the insert in the same batch applies.
printf 'BATCH 2\nDELETE 999999\n%s\n' "$BATCH_INSERT" >&3
IFS= read -r REPLY <&3; REPLY=${REPLY%$'\r'}
case "$REPLY" in
  "OK applied=1 failed=1 epoch=5 "*) printf 'ok: %-18s -> %s\n' "BATCH" "$REPLY" ;;
  *) echo "FAIL: partial BATCH -> '$REPLY'" >&2; exit 1 ;;
esac
IFS= read -r FAIL_LINE <&3; FAIL_LINE=${FAIL_LINE%$'\r'}
if [ "$FAIL_LINE" = "FAIL 0 unknown point id 999999" ]; then
  printf 'ok: %-18s -> %s\n' "BATCH" "$FAIL_LINE"
else
  echo "FAIL: BATCH fail line -> '$FAIL_LINE'" >&2; exit 1
fi

# Syntactic errors reject the whole batch unapplied: nothing publishes,
# the epoch stays put.
printf 'BATCH 2\nINSERT 1 2 nan\nDELETE 1\n' >&3
IFS= read -r REPLY <&3; REPLY=${REPLY%$'\r'}
case "$REPLY" in
  "ERR batch line 0: bad vector component 'nan'")
    printf 'ok: %-18s -> %s\n' "BATCH" "$REPLY" ;;
  *) echo "FAIL: malformed BATCH -> '$REPLY'" >&2; exit 1 ;;
esac
expect "BATCH 0" "ERR BATCH needs a positive op count"
expect "INDEXINFO" "INDEXINFO name=audio *epoch=5 *"
expect "QUIT" "BYE"
exec 3<&- 3>&-

echo "== binary framing parity (batch-query --addr, text vs binary)"
"$BIN" batch-query --addr "127.0.0.1:$PORT" --queries "$TMP/audio_q.fvecs" \
  --index audio --k 5 > "$TMP/text.out"
"$BIN" batch-query --addr "127.0.0.1:$PORT" --queries "$TMP/audio_q.fvecs" \
  --index audio --k 5 --binary > "$TMP/binary.out"
grep '^query ' "$TMP/text.out" > "$TMP/text.q"
grep '^query ' "$TMP/binary.out" > "$TMP/binary.q"
[ -s "$TMP/text.q" ] || { echo "FAIL: batch-query produced no query lines" >&2; exit 1; }
if diff -u "$TMP/text.q" "$TMP/binary.q"; then
  printf 'ok: %-18s -> %s query replies bit-identical across framings\n' \
    "BINARY" "$(wc -l < "$TMP/text.q")"
else
  echo "FAIL: text and binary framings disagree" >&2
  exit 1
fi

echo "== pmlsh reindex client against the running server"
"$BIN" reindex --addr "127.0.0.1:$PORT" --data "$TMP/audio.fvecs" \
  --index audio --auth-token "$TOKEN"

echo "== pmlsh batch-mutate client (ops file -> BATCH verb)"
{
  echo "# smoke ops: one insert, one unknown delete (reported, not fatal)"
  echo ""
  awk -v d="$DIM" 'BEGIN{printf "INSERT"; for(i=0;i<d;i++) printf " 0.625"; print ""}'
  echo "DELETE 999999"
} > "$TMP/ops.txt"
"$BIN" batch-mutate --addr "127.0.0.1:$PORT" --ops "$TMP/ops.txt" \
  --index audio --auth-token "$TOKEN" > "$TMP/batch.out"
grep -q "applied=1 failed=1" "$TMP/batch.out" \
  || { echo "FAIL: batch-mutate summary:" >&2; cat "$TMP/batch.out" >&2; exit 1; }
grep -q "FAIL 1 unknown point id 999999" "$TMP/batch.out" \
  || { echo "FAIL: batch-mutate fail line:" >&2; cat "$TMP/batch.out" >&2; exit 1; }
printf 'ok: %-18s -> applied=1 failed=1, FAIL line surfaced\n' "batch-mutate"

echo "== snapshot save (pmlsh save client -> wire SAVE verb)"
"$BIN" save --addr "127.0.0.1:$PORT" --out "$TMP/audio.pmlsh" \
  --index audio --auth-token "$TOKEN"
[ -s "$TMP/audio.pmlsh" ] || { echo "FAIL: snapshot file not written" >&2; exit 1; }

# Capture the served answer to one fixed query for the parity check below.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
PARITY_LINE=$(query_line)
PARITY_BEFORE=$(req "$PARITY_LINE")
case "$PARITY_BEFORE" in
  "OK "*:*) ;;
  *) echo "FAIL: parity query -> '$PARITY_BEFORE'" >&2; exit 1 ;;
esac
expect "QUIT" "BYE"
exec 3<&- 3>&-

echo "== save -> kill -> re-serve from the .pmlsh snapshot"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
"$BIN" serve --data "audio=$TMP/audio.pmlsh" --port "$PORT" --threads 2 &
SERVE_PID=$!
wait_ready

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
expect "INDEXINFO" "INDEXINFO name=audio *state=serving pct=100 shards=1"
PARITY_AFTER=$(req "$PARITY_LINE")
if [ "$PARITY_BEFORE" = "$PARITY_AFTER" ]; then
  printf 'ok: %-18s -> restored snapshot answers identically\n' "PARITY"
else
  echo "FAIL: snapshot parity broke:" >&2
  echo "  before: $PARITY_BEFORE" >&2
  echo "  after:  $PARITY_AFTER" >&2
  exit 1
fi
expect "QUIT" "BYE"
exec 3<&- 3>&-

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

echo "== sharded serving (--shards 4): scatter-gather behind the same wire"
"$BIN" serve --data "audio=$TMP/audio.fvecs" --port "$PORT" --threads 2 \
  --shards 4 --auth-token "$TOKEN" &
SERVE_PID=$!
wait_ready

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
expect "INDEXINFO" "INDEXINFO name=audio *shards=4"
expect "$(query_line)" "OK *:*"
expect "AUTH $TOKEN" "OK authenticated"

# Mutations route to the owning shard; the wire grammar is unchanged.
DIM=$(req "INDEXINFO" | sed -n 's/.* dim=\([0-9]*\).*/\1/p')
INSERT_LINE=$(awk -v d="$DIM" 'BEGIN{printf "INSERT"; for(i=0;i<d;i++) printf " 0.5"; print ""}')
PROBE_LINE=$(awk -v d="$DIM" 'BEGIN{printf "QUERY 1"; for(i=0;i<d;i++) printf " 0.5"; print ""}')
REPLY=$(req "$INSERT_LINE")
case "$REPLY" in
  "OK id="*) printf 'ok: %-18s -> %s\n' "INSERT" "$REPLY" ;;
  *) echo "FAIL: sharded INSERT -> '$REPLY'" >&2; exit 1 ;;
esac
NEW_ID=${REPLY#OK id=}; NEW_ID=${NEW_ID%% *}
expect "$PROBE_LINE" "OK $NEW_ID:0*"
expect "DELETE $NEW_ID" "OK deleted $NEW_ID *"
expect "QUIT" "BYE"
exec 3<&- 3>&-

echo "== sharded snapshot: SAVE writes a manifest, re-serve restores all shards"
"$BIN" save --addr "127.0.0.1:$PORT" --out "$TMP/sharded.pmlsh" \
  --index audio --auth-token "$TOKEN"
[ -s "$TMP/sharded.pmlsh" ] || { echo "FAIL: sharded manifest not written" >&2; exit 1; }
for s in 0 1 2 3; do
  [ -s "$TMP/sharded.pmlsh.s$s" ] || { echo "FAIL: shard file .s$s missing" >&2; exit 1; }
done

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
PARITY_LINE=$(query_line)
PARITY_BEFORE=$(req "$PARITY_LINE")
expect "QUIT" "BYE"
exec 3<&- 3>&-

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
"$BIN" serve --data "audio=$TMP/sharded.pmlsh" --port "$PORT" --threads 2 &
SERVE_PID=$!
wait_ready

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
expect "INDEXINFO" "INDEXINFO name=audio *state=serving pct=100 shards=4"
PARITY_AFTER=$(req "$PARITY_LINE")
if [ "$PARITY_BEFORE" = "$PARITY_AFTER" ]; then
  printf 'ok: %-18s -> restored sharded manifest answers identically\n' "PARITY"
else
  echo "FAIL: sharded snapshot parity broke:" >&2
  echo "  before: $PARITY_BEFORE" >&2
  echo "  after:  $PARITY_AFTER" >&2
  exit 1
fi
expect "QUIT" "BYE"
exec 3<&- 3>&-

kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "== serve smoke passed"
