//! End-to-end through the facade: the serving subsystem reached via
//! `pm_lsh::prelude` only, from dataset registry to TCP wire format.

use pm_lsh::engine::server::parse_ok_response;
use pm_lsh::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

#[test]
fn prelude_covers_the_serving_workflow() {
    let generator = PaperDataset::Mnist.generator(Scale::Smoke);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(12);
    let truth = exact_knn_batch(data.view(), queries.view(), 5, 0);

    let index = PmLsh::build(Arc::clone(&data), PmLshParams::paper_defaults());
    let engine = Engine::new(
        index,
        EngineConfig {
            threads: 2,
            ..Default::default()
        },
    );

    // Batched path: same recall as the per-query path, order preserved.
    let query_vecs: Vec<&[f32]> = queries.iter().collect();
    let batch = engine.query_batch(&query_vecs, 5);
    let mut recall_sum = 0.0;
    for (qi, res) in batch.iter().enumerate() {
        recall_sum += recall(&res.neighbors, &truth[qi]);
    }
    assert!(
        recall_sum / batch.len() as f64 > 0.3,
        "served recall implausibly low: {recall_sum}"
    );

    let stats: EngineStats = engine.stats();
    assert_eq!(stats.queries, 12);

    // Wire path: one query over TCP must reproduce the in-process answer.
    let handle: ServerHandle = serve(engine.clone(), ("127.0.0.1", 0)).expect("bind");
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::from("QUERY 5");
    for v in queries.point(0) {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let served = parse_ok_response(response.trim()).expect("OK response");
    assert_eq!(
        served.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        batch[0].neighbors.iter().map(|n| n.id).collect::<Vec<_>>(),
        "TCP answer diverged from the in-process batch"
    );
    handle.shutdown();
}
