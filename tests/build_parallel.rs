//! Parallel builds must be reproducible: a 1-thread and a 4-thread
//! `BuildOptions` build of the same dataset are required to answer every
//! query identically (ISSUE 2 acceptance criterion, exercised through the
//! facade on the Audio smoke stand-in).

use pm_lsh::prelude::*;

#[test]
fn one_and_four_thread_builds_answer_identically_on_audio_smoke() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(50);
    let params = PmLshParams::paper_defaults();

    let one = PmLsh::build_with_opts(data.clone(), params, BuildOptions::with_threads(1));
    let four = PmLsh::build_with_opts(data.clone(), params, BuildOptions::with_threads(4));

    assert_eq!(one.len(), data.len());
    assert_eq!(four.len(), data.len());
    for (qi, q) in queries.iter().enumerate() {
        let a = one.query(q, 10);
        let b = four.query(q, 10);
        assert_eq!(
            a.neighbors, b.neighbors,
            "query {qi}: 4-thread build returned different k-NN results"
        );
        assert_eq!(
            a.stats, b.stats,
            "query {qi}: 4-thread build traversed a different tree"
        );
    }
}

#[test]
fn parallel_build_recall_matches_incremental_build() {
    // The bulk-loaded tree differs in shape from the incremental one, but
    // both index the same projections and must deliver comparable answer
    // quality against exact ground truth.
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = std::sync::Arc::new(generator.dataset());
    let queries = generator.queries(30);
    let truth = exact_knn_batch(data.view(), queries.view(), 10, 0);
    let params = PmLshParams::paper_defaults();

    let incremental = PmLsh::build(std::sync::Arc::clone(&data), params);
    let bulk = PmLsh::build_with_opts(
        std::sync::Arc::clone(&data),
        params,
        BuildOptions::all_cores(),
    );

    let (mut r_inc, mut r_bulk) = (0.0, 0.0);
    for (qi, q) in queries.iter().enumerate() {
        r_inc += recall(&incremental.query(q, 10).neighbors, &truth[qi]);
        r_bulk += recall(&bulk.query(q, 10).neighbors, &truth[qi]);
    }
    let n = queries.len() as f64;
    let (r_inc, r_bulk) = (r_inc / n, r_bulk / n);
    assert!(
        (r_inc - r_bulk).abs() < 0.15,
        "bulk-load recall {r_bulk} drifted from incremental recall {r_inc}"
    );
}
