//! Cross-crate integration tests: every algorithm of the evaluation, built
//! through the facade crate over the dataset registry, scored against exact
//! ground truth.

use pm_lsh::prelude::*;
use std::sync::Arc;

fn workload(ds: PaperDataset, nq: usize, k: usize) -> (Arc<Dataset>, Dataset, Vec<Vec<Neighbor>>) {
    let generator = ds.generator(Scale::Smoke);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(nq);
    let truth = exact_knn_batch(data.view(), queries.view(), k, 0);
    (data, queries, truth)
}

#[test]
fn all_algorithms_beat_random_on_every_dataset() {
    // Random guessing recall@10 on n = 2000 is ~0.005; require every
    // algorithm to be far above it on every stand-in dataset.
    for ds in PaperDataset::ALL {
        let (data, queries, truth) = workload(ds, 10, 10);
        let algos: Vec<Box<dyn AnnIndex>> = vec![
            Box::new(PmLsh::build(data.clone(), PmLshParams::paper_defaults())),
            Box::new(Srs::build(data.clone(), SrsParams::default())),
            Box::new(Qalsh::build(data.clone(), QalshParams::default())),
            Box::new(MultiProbe::build(data.clone(), MultiProbeParams::default())),
            Box::new(RLsh::build(data.clone(), PmLshParams::paper_defaults())),
            Box::new(LScan::build(data.clone(), LScanParams::default())),
        ];
        // NUS and GIST are the paper's hard datasets (LID 24.5 / 18.9); at
        // smoke scale (n = 2000) their distance concentration is extreme, so
        // guarantee-driven algorithms (SRS's early termination returns a
        // valid c-approximation, not the exact set) legitimately score lower.
        let floor = match ds {
            PaperDataset::Nus | PaperDataset::Gist => 0.08,
            _ => 0.3,
        };
        for algo in &algos {
            let mut total = 0.0;
            for (qi, q) in queries.iter().enumerate() {
                let res = algo.query(q, 10);
                total += recall(&res.neighbors, &truth[qi]);
            }
            let avg = total / queries.len() as f64;
            assert!(
                avg > floor,
                "{} recall {avg:.3} on {} is implausibly low",
                algo.name(),
                ds.name()
            );
        }
    }
}

#[test]
fn pmlsh_dominates_lscan_quality_at_smoke_scale() {
    let (data, queries, truth) = workload(PaperDataset::Cifar, 15, 10);
    let pm = PmLsh::build(data.clone(), PmLshParams::paper_defaults());
    let scan = LScan::build(data, LScanParams::default());
    let (mut pm_recall, mut scan_recall) = (0.0, 0.0);
    for (qi, q) in queries.iter().enumerate() {
        pm_recall += recall(&AnnIndex::query(&pm, q, 10).neighbors, &truth[qi]);
        scan_recall += recall(&scan.query(q, 10).neighbors, &truth[qi]);
    }
    assert!(
        pm_recall > scan_recall,
        "PM-LSH {pm_recall:.2} should beat a 70% scan {scan_recall:.2}"
    );
}

#[test]
fn results_are_deterministic_across_rebuilds() {
    let (data, queries, _) = workload(PaperDataset::Audio, 5, 5);
    let a = PmLsh::build(data.clone(), PmLshParams::paper_defaults());
    let b = PmLsh::build(data, PmLshParams::paper_defaults());
    for q in queries.iter() {
        let ra = a.query(q, 5);
        let rb = b.query(q, 5);
        assert_eq!(ra.neighbors, rb.neighbors);
        assert_eq!(ra.stats, rb.stats);
    }
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // The doc-advertised workflow compiles and runs through the prelude only.
    let generator = PaperDataset::Mnist.generator(Scale::Smoke);
    let data = generator.dataset();
    let q = data.point(3).to_vec();
    let index = PmLsh::build(data, PmLshParams::default());
    let res = index.query(&q, 3);
    assert_eq!(res.neighbors[0].id, 3);
    assert_eq!(res.neighbors[0].dist, 0.0);
}

#[test]
fn returned_neighbors_are_sorted_and_distances_exact() {
    let (data, queries, _) = workload(PaperDataset::Deep, 8, 20);
    let pm = PmLsh::build(data.clone(), PmLshParams::paper_defaults());
    for q in queries.iter() {
        let res = pm.query(q, 20);
        for w in res.neighbors.windows(2) {
            assert!(w[0].dist <= w[1].dist, "results must be sorted");
        }
        for nb in &res.neighbors {
            let real = pm_lsh::metric::euclidean(q, data.point_id(nb.id));
            assert!(
                (real - nb.dist).abs() <= 1e-5 * (1.0 + real),
                "reported distance must be exact"
            );
        }
    }
}
