//! Recall-regression guard for the mutable index layer: end-to-end
//! recall on the Audio smoke dataset must stay above a checked-in floor
//! after a 10% delete + reinsert churn cycle, so incremental maintenance
//! can never silently degrade answer quality.

use pm_lsh::prelude::*;
use pm_lsh_metric::euclidean;

const K: usize = 10;
const NQ: usize = 30;

/// The checked-in floor. The paper's Table 4 reports recall 0.88–0.99 at
/// the β = 0.2809 operating point; the unmutated Audio smoke stand-in
/// measures ≈0.95 here, and churn must keep it in that regime. A failure
/// of this assertion means a mutation bug is eating answers — not noise:
/// every quantity in the test is seeded and deterministic.
const RECALL_FLOOR: f64 = 0.85;

/// Exact k-NN over the *live* points of a (possibly mutated) index.
fn exact_live_knn(index: &PmLsh, q: &[f32], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = index
        .live_ids()
        .iter()
        .map(|&id| Neighbor::new(euclidean(q, index.data().point_id(id)), id))
        .collect();
    all.sort();
    all.truncate(k);
    all
}

fn mean_recall(index: &PmLsh, queries: &Dataset) -> f64 {
    let mut sum = 0.0;
    for q in queries.iter() {
        let truth = exact_live_knn(index, q, K);
        sum += recall(&index.query(q, K).neighbors, &truth);
    }
    sum / queries.len() as f64
}

#[test]
fn recall_survives_ten_percent_churn() {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(NQ);
    let n = data.len();
    let mut index = PmLsh::build(data.clone(), PmLshParams::paper_defaults());

    let before = mean_recall(&index, &queries);
    assert!(
        before >= RECALL_FLOOR,
        "pre-churn recall {before:.4} is already below the floor — \
         the floor or the build regressed before mutations even ran"
    );

    // Churn: delete a seeded random 10% of the points, then reinsert the
    // same vectors (they come back under fresh external ids).
    let mut rng = Rng::new(0xc0ffee);
    let victims = rng.sample_indices(n, n / 10);
    for &row in &victims {
        assert!(index.delete(row as u32), "row {row} was live");
    }
    assert_eq!(index.len(), n - victims.len());
    for &row in &victims {
        index.insert(data.point(row));
    }
    assert_eq!(index.len(), n);
    index
        .tree()
        .verify_invariants()
        .expect("post-churn tree invariants");

    let after = mean_recall(&index, &queries);
    assert!(
        after >= RECALL_FLOOR,
        "post-churn recall {after:.4} fell below the checked-in floor \
         {RECALL_FLOOR} (pre-churn: {before:.4})"
    );
    // Also guard the *relative* drop: churn restored the same geometry,
    // so recall should track the unmutated index closely.
    assert!(
        after >= before - 0.05,
        "churn cost {:.4} recall (before {before:.4}, after {after:.4})",
        before - after
    );
}
