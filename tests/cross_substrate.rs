//! Cross-substrate consistency: PM-LSH vs R-LSH (identical algorithm over
//! different trees) and the Table 2 cost-model relationship between them.

use pm_lsh::hash::GaussianProjector;
use pm_lsh::pmtree::{PmTree, PmTreeConfig};
use pm_lsh::prelude::*;
use pm_lsh::rtree::{RTree, RTreeConfig};
use pm_lsh::stats::{dimension_marginals, distance_distribution};
use std::sync::Arc;

#[test]
fn pmlsh_and_rlsh_agree_on_quality() {
    // Same Eq. 10 constants, same projections seed, same candidate budget:
    // the two indexes must land in the same recall class.
    let generator = PaperDataset::Mnist.generator(Scale::Smoke);
    let data = Arc::new(generator.dataset());
    let queries = generator.queries(12);
    let truth = exact_knn_batch(data.view(), queries.view(), 10, 0);

    let params = PmLshParams::paper_defaults();
    let pm = PmLsh::build(data.clone(), params);
    let rl = RLsh::build(data, params);

    let (mut pm_recall, mut rl_recall) = (0.0, 0.0);
    for (qi, q) in queries.iter().enumerate() {
        pm_recall += recall(&AnnIndex::query(&pm, q, 10).neighbors, &truth[qi]);
        rl_recall += recall(&rl.query(q, 10).neighbors, &truth[qi]);
    }
    let nq = queries.len() as f64;
    assert!(
        (pm_recall / nq - rl_recall / nq).abs() < 0.2,
        "substrate change must not change quality class: pm={} rl={}",
        pm_recall / nq,
        rl_recall / nq
    );
}

#[test]
fn cost_model_favors_pmtree_on_projected_data() {
    // Table 2's claim on the stand-ins: expected distance computations of
    // the PM-tree at the 8% radius are below the R-tree's.
    for ds in [
        PaperDataset::Cifar,
        PaperDataset::Trevi,
        PaperDataset::Audio,
    ] {
        let generator = ds.generator(Scale::Smoke);
        let data = generator.dataset();
        let mut rng = Rng::new(0xc0de ^ ds as u64);
        let projector = GaussianProjector::new(data.dim(), 15, &mut rng);
        let projected = projector.project_all(data.view());

        let pm = PmTree::build(projected.view(), PmTreeConfig::default(), &mut rng);
        let rt = RTree::build(projected.view(), RTreeConfig::default());
        let f = distance_distribution(projected.view(), 20_000, &mut rng);
        let g = dimension_marginals(projected.view(), 2_000, &mut rng);
        let rq = f.quantile(0.08);

        let cc_pm = pm_lsh::pmtree::expected_distance_computations(&pm, &f, rq);
        let cc_rt = pm_lsh::rtree::expected_distance_computations(&rt, &g, rq);
        assert!(
            cc_pm < cc_rt,
            "{}: CC_PM {cc_pm:.0} should be below CC_R {cc_rt:.0}",
            ds.name()
        );
    }
}

#[test]
fn measured_range_cost_tracks_the_model_ordering() {
    // The empirical distance-computation counters of the two cursors must
    // reproduce the model's ordering (PM-tree cheaper) on average.
    let generator = PaperDataset::Cifar.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(10);
    let mut rng = Rng::new(0xbeef);
    let projector = GaussianProjector::new(data.dim(), 15, &mut rng);
    let projected = projector.project_all(data.view());
    let proj_queries = projector.project_all(queries.view());

    let pm = PmTree::build(projected.view(), PmTreeConfig::default(), &mut rng);
    let rt = RTree::build(projected.view(), RTreeConfig::default());
    let f = distance_distribution(projected.view(), 20_000, &mut rng);
    let rq = f.quantile(0.08) as f32;

    let (mut pm_comps, mut rt_comps) = (0u64, 0u64);
    for q in proj_queries.iter() {
        let mut cur = pm.cursor(q);
        while cur.next_within(rq).is_some() {}
        pm_comps += cur.distance_computations();

        let mut cur = rt.cursor(q);
        while cur.next_within(rq).is_some() {}
        rt_comps += cur.distance_computations();
    }
    assert!(
        pm_comps < rt_comps,
        "measured: PM-tree {pm_comps} vs R-tree {rt_comps} distance computations"
    );
}

#[test]
fn projected_range_equivalence_between_trees() {
    // Both trees index the same projections, so range queries must return
    // the identical id set — the substrates differ only in cost.
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let mut rng = Rng::new(0xabba);
    let projector = GaussianProjector::new(data.dim(), 15, &mut rng);
    let projected = projector.project_all(data.view());
    let pm = PmTree::build(projected.view(), PmTreeConfig::default(), &mut rng);
    let rt = RTree::build(projected.view(), RTreeConfig::default());

    let q = projected.point(11);
    for radius in [5.0f32, 20.0, 60.0] {
        let a: std::collections::BTreeSet<u32> =
            pm.range(q, radius).into_iter().map(|x| x.0).collect();
        let b: std::collections::BTreeSet<u32> =
            rt.range(q, radius).into_iter().map(|x| x.0).collect();
        assert_eq!(a, b, "radius {radius}");
    }
}
