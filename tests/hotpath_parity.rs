//! Result parity of the refactored query hot path against the
//! pre-refactor implementation (`PmLsh::*_reference`), on the Audio smoke
//! dataset.
//!
//! The hot-path PR changed *how* every candidate distance is computed
//! (early-abandoning squared-distance kernels), *where* the working memory
//! lives (reused `QueryContext` instead of per-query allocation) and *who*
//! runs the query (batch chunks and engine workers share contexts). None
//! of that may change a single answer or a single counter: for every entry
//! point, `neighbors` and the full `QueryStats` (candidates verified,
//! projected distance computations, rounds) must be identical to the old
//! code, which is preserved verbatim in `pm_lsh_core::reference`.

use pm_lsh::prelude::*;

fn audio_smoke() -> (PmLsh, Dataset) {
    let generator = PaperDataset::Audio.generator(Scale::Smoke);
    let data = generator.dataset();
    let queries = generator.queries(40);
    let index = PmLsh::build(data, PmLshParams::paper_defaults());
    (index, queries)
}

#[test]
fn query_matches_reference_fresh_and_reused() {
    let (index, queries) = audio_smoke();
    let mut ctx = QueryContext::new();
    for (qi, q) in queries.iter().enumerate() {
        for k in [1usize, 10, 50] {
            let reference = index.query_reference(q, k);
            let fresh = index.query(q, k);
            assert_eq!(fresh.neighbors, reference.neighbors, "q{qi} k{k} fresh");
            assert_eq!(fresh.stats, reference.stats, "q{qi} k{k} fresh stats");
            let reused = index.query_with_context(q, k, &mut ctx);
            assert_eq!(reused.neighbors, reference.neighbors, "q{qi} k{k} reused");
            assert_eq!(reused.stats, reference.stats, "q{qi} k{k} reused stats");
        }
    }
}

#[test]
fn query_with_c_matches_reference() {
    let (index, queries) = audio_smoke();
    for (qi, q) in queries.iter().enumerate().take(15) {
        for c in [1.2f64, 2.0, 3.0] {
            let reference = index.query_with_c_reference(q, 10, c);
            let got = index.query_with_c(q, 10, c);
            assert_eq!(got.neighbors, reference.neighbors, "q{qi} c{c}");
            assert_eq!(got.stats, reference.stats, "q{qi} c{c} stats");
        }
    }
}

#[test]
fn query_bc_matches_reference() {
    let (index, queries) = audio_smoke();
    let base = index.select_rmin(10);
    let mut ctx = QueryContext::new();
    let mut hits = 0usize;
    for (qi, q) in queries.iter().enumerate().take(20) {
        for scale in [0.25f64, 0.5, 1.0, 2.0] {
            let r = base * scale;
            let reference = index.query_bc_reference(q, r);
            assert_eq!(index.query_bc(q, r), reference, "q{qi} r{r}");
            assert_eq!(
                index.query_bc_with_context(q, r, &mut ctx),
                reference,
                "q{qi} r{r} reused"
            );
            hits += reference.is_some() as usize;
        }
    }
    assert!(
        hits > 0,
        "ball-cover parity needs at least one non-None case"
    );
}

#[test]
fn query_batch_matches_reference() {
    let (index, queries) = audio_smoke();
    let batch = index.query_batch(queries.view(), 10, 4);
    assert_eq!(batch.len(), queries.len());
    for (qi, q) in queries.iter().enumerate() {
        let reference = index.query_reference(q, 10);
        assert_eq!(batch[qi].neighbors, reference.neighbors, "q{qi}");
        assert_eq!(batch[qi].stats, reference.stats, "q{qi} stats");
    }
}

#[test]
fn one_context_survives_mixed_workloads() {
    // A single context serving interleaved k values, c values and
    // ball-cover queries (the engine-worker lifecycle) never contaminates
    // a later answer with an earlier query's state.
    let (index, queries) = audio_smoke();
    let mut ctx = QueryContext::new();
    let r = index.select_rmin(5);
    for (qi, q) in queries.iter().enumerate().take(12) {
        let k = 1 + (qi % 20);
        let reference = index.query_reference(q, k);
        let got = index.query_with_context(q, k, &mut ctx);
        assert_eq!(got.neighbors, reference.neighbors, "q{qi} k{k}");
        assert_eq!(got.stats, reference.stats, "q{qi} k{k} stats");
        assert_eq!(
            index.query_bc_with_context(q, r, &mut ctx),
            index.query_bc_reference(q, r),
            "q{qi} bc"
        );
    }
}
