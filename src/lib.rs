//! # PM-LSH — fast and accurate LSH for high-dimensional approximate NN search
//!
//! A from-scratch Rust reproduction of Zheng, Zhao, Weng, Nguyen, Liu and
//! Jensen, *PM-LSH: A Fast and Accurate LSH Framework for High-Dimensional
//! Approximate NN Search*, PVLDB 13(5), 2020.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the PM-LSH index: Gaussian projections, χ² confidence
//!   intervals (Lemma 3 / Eq. 10), the `(r,c)`-ball-cover query
//!   (Algorithm 1) and the `(c,k)`-ANN query (Algorithm 2).
//! * [`pmtree`] / [`rtree`] / [`bptree`] — the index substrates (PM-tree,
//!   R-tree, B+-tree) with incremental best-first cursors and the node-based
//!   cost models of Section 4.2.
//! * [`hash`] — p-stable hash families, collision probabilities and
//!   multi-probe perturbation sequences.
//! * [`engine`] — the serving subsystem: a fixed worker pool and
//!   micro-batching queue over one immutable index snapshot
//!   ([`engine::Engine`]), aggregate throughput/latency statistics
//!   ([`engine::EngineStats`]), multi-index routing by name
//!   ([`engine::Router`]), and a newline-delimited TCP protocol with
//!   optional token auth, a connection cap and graceful drain
//!   ([`engine::serve`] / [`engine::serve_router`], wire grammar in
//!   [`engine::server`]).
//! * [`baselines`] — the evaluation's competitors: SRS, QALSH, Multi-Probe
//!   LSH, R-LSH and LScan, behind one [`baselines::AnnIndex`] trait.
//! * [`persist`] — versioned, checksummed `.pmlsh` on-disk snapshots:
//!   [`persist::Snapshot`] gives `index.save(path)` / `PmLsh::load(path)`
//!   with bit-identical query answers after a restart, and the serving
//!   layer ATTACHes snapshot files instantly instead of rebuilding.
//! * [`data`] — seeded synthetic stand-ins for the paper's seven datasets,
//!   exact ground truth and the recall / overall-ratio metrics.
//! * [`stats`] / [`metric`] — numerics (χ², Φ, ECDFs, RC/LID/HV) and dense
//!   vector kernels.
//!
//! ## Quick start
//!
//! ```
//! use pm_lsh::prelude::*;
//!
//! // A seeded stand-in for the paper's Audio dataset, tiny scale.
//! let generator = PaperDataset::Audio.generator(Scale::Smoke);
//! let data = generator.dataset();
//! let queries = generator.queries(5);
//!
//! let index = PmLsh::build(data, PmLshParams::paper_defaults());
//! for q in queries.iter() {
//!     let result = index.query(q, 10);
//!     assert_eq!(result.neighbors.len(), 10);
//! }
//! ```

#![warn(missing_docs)]

pub use pm_lsh_baselines as baselines;
pub use pm_lsh_bptree as bptree;
pub use pm_lsh_core as core;
pub use pm_lsh_data as data;
pub use pm_lsh_engine as engine;
pub use pm_lsh_hash as hash;
pub use pm_lsh_metric as metric;
pub use pm_lsh_persist as persist;
pub use pm_lsh_pmtree as pmtree;
pub use pm_lsh_rtree as rtree;
pub use pm_lsh_stats as stats;

/// The most common imports in one place.
pub mod prelude {
    pub use pm_lsh_baselines::{
        AnnIndex, AnnResult, LScan, LScanParams, MultiProbe, MultiProbeParams, Qalsh, QalshParams,
        RLsh, Srs, SrsParams,
    };
    pub use pm_lsh_core::{
        BuildOptions, PmLsh, PmLshParams, QueryContext, QueryResult, QueryStats,
    };
    pub use pm_lsh_data::{
        exact_knn, exact_knn_batch, overall_ratio, recall, Generator, PaperDataset, Scale,
        SynthSpec,
    };
    pub use pm_lsh_engine::{
        serve, serve_router, DrainReport, Engine, EngineConfig, EngineStats, IndexInfo, QueryError,
        ReindexError, ReindexReport, ReindexTicket, Router, RouterError, ServerConfig,
        ServerHandle, ShardedEngine,
    };
    pub use pm_lsh_metric::{Dataset, Neighbor, PointId};
    pub use pm_lsh_persist::{PersistError, SaveReport, Snapshot};
    pub use pm_lsh_stats::Rng;
}
