//! `pmlsh` — command-line interface to the PM-LSH workspace.
//!
//! ```text
//! pmlsh gen         --dataset cifar --scale smoke --out data.fvecs [--queries queries.fvecs --nq 100]
//! pmlsh stats       --data data.fvecs
//! pmlsh query       --data data.fvecs --queries queries.fvecs --k 10 [--c 1.5] [--algo pm-lsh]
//! pmlsh bench       --data data.fvecs --queries queries.fvecs --k 10
//! pmlsh batch-query --data audio=a.fvecs,deep=d.fvecs --index deep --queries q.fvecs --k 10
//! pmlsh batch-query --addr 127.0.0.1:7878 --queries q.fvecs --k 10 [--binary]
//! pmlsh serve       --data audio=a.fvecs,deep=d.pmlsh --port 7878 [--threads 4]
//!                   [--shards 4] [--auth-token t] [--max-connections 1024]
//!                   [--drain-timeout-ms 5000]
//! pmlsh save        --data a.fvecs --out a.pmlsh                  (build + snapshot)
//! pmlsh save        --addr 127.0.0.1:7878 --out /srv/a.pmlsh      (running server)
//! pmlsh reindex     --addr 127.0.0.1:7878 --data new.fvecs [--index deep] [--auth-token t]
//! pmlsh insert      --addr 127.0.0.1:7878 --vector 0.1,0.2,... [--index deep] [--auth-token t]
//! pmlsh delete      --addr 127.0.0.1:7878 --id 42 [--index deep] [--auth-token t]
//! pmlsh batch-mutate --addr 127.0.0.1:7878 --ops ops.txt [--index deep] [--auth-token t]
//! ```
//!
//! `--data` takes either one bare path (index name `default`) or a
//! comma-separated list of `name=path` pairs — `serve` attaches every
//! entry to one multi-index server, `batch-query` picks one with
//! `--index`. Files starting with the `.pmlsh` snapshot magic are loaded
//! as pre-built indexes (no rebuild — instant serving with the saved
//! parameters); files ending in `.csv` are parsed as headerless CSV;
//! anything else as little-endian `fvecs` (the TEXMEX format the paper's
//! real datasets ship in), so the same binary drives both the synthetic
//! stand-ins and the real datasets when available.

use pm_lsh::data::{read_auto, write_csv, write_fvecs};
use pm_lsh::prelude::*;
use pm_lsh::stats::dataset_stats::{homogeneity_of_viewpoints, lid_mle, relative_contrast};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => known_opts(&opts, &["dataset", "out", "scale", "queries", "nq"])
            .and_then(|()| cmd_gen(&opts)),
        "stats" => known_opts(&opts, &["data"]).and_then(|()| cmd_stats(&opts)),
        "query" => known_opts(&opts, &["data", "queries", "k", "c", "algo", "no-truth"])
            .and_then(|()| cmd_query(&opts)),
        "bench" => {
            known_opts(&opts, &["data", "queries", "k", "c"]).and_then(|()| cmd_bench(&opts))
        }
        "batch-query" => known_opts(
            &opts,
            &[
                "data",
                "index",
                "queries",
                "k",
                "c",
                "no-truth",
                "threads",
                "build-threads",
                "batch-size",
                "max-wait-us",
                "addr",
                "binary",
                "auth-token",
            ],
        )
        .and_then(|()| cmd_batch_query(&opts)),
        "serve" => known_opts(
            &opts,
            &[
                "data",
                "port",
                "c",
                "threads",
                "build-threads",
                "batch-size",
                "max-wait-us",
                "shards",
                "auth-token",
                "max-connections",
                "max-index-connections",
                "drain-timeout-ms",
            ],
        )
        .and_then(|()| cmd_serve(&opts)),
        "save" => known_opts(
            &opts,
            &[
                "data",
                "out",
                "c",
                "build-threads",
                "addr",
                "index",
                "auth-token",
            ],
        )
        .and_then(|()| cmd_save(&opts)),
        "reindex" => known_opts(&opts, &["addr", "data", "index", "auth-token"])
            .and_then(|()| cmd_reindex(&opts)),
        "insert" => known_opts(&opts, &["addr", "vector", "index", "auth-token"])
            .and_then(|()| cmd_insert(&opts)),
        "delete" => known_opts(&opts, &["addr", "id", "index", "auth-token"])
            .and_then(|()| cmd_delete(&opts)),
        "batch-mutate" => known_opts(&opts, &["addr", "ops", "index", "auth-token"])
            .and_then(|()| cmd_batch_mutate(&opts)),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pmlsh — PM-LSH approximate nearest-neighbor search

USAGE:
  pmlsh gen    --dataset <audio|deep|nus|mnist|gist|cifar|trevi> --out <file>
               [--scale smoke|bench|full] [--queries <file>] [--nq <n>]
  pmlsh stats  --data <file>
  pmlsh query  --data <file> --queries <file> [--k <n>] [--c <ratio>]
               [--algo pm-lsh|srs|qalsh|multi-probe|r-lsh|lscan] [--no-truth]
  pmlsh bench  --data <file> --queries <file> [--k <n>] [--c <ratio>]
  pmlsh batch-query --data <specs> [--index <name>] --queries <file>
               [--k <n>] [--c <ratio>] [--threads <n>] [--build-threads <n>]
               [--no-truth]
  pmlsh batch-query --addr <host:port> --queries <file> [--k <n>]
               [--index <name>] [--auth-token <t>] [--binary]
  pmlsh serve  --data <specs> --port <p> [--threads <n>] [--c <ratio>]
               [--build-threads <n>] [--batch-size <n>] [--max-wait-us <µs>]
               [--shards <n>] [--auth-token <t>] [--max-connections <n>]
               [--max-index-connections <n>] [--drain-timeout-ms <ms>]
  pmlsh save   --data <file> --out <file.pmlsh> [--c <ratio>]
               [--build-threads <n>]
  pmlsh save   --addr <host:port> --out <server-side file.pmlsh>
               [--index <name>] [--auth-token <t>]
  pmlsh reindex --addr <host:port> --data <server-side file>
               [--index <name>] [--auth-token <t>]
  pmlsh insert --addr <host:port> --vector <v1,v2,...>
               [--index <name>] [--auth-token <t>]
  pmlsh delete --addr <host:port> --id <point id>
               [--index <name>] [--auth-token <t>]
  pmlsh batch-mutate --addr <host:port> --ops <file>
               [--index <name>] [--auth-token <t>]

`--data <specs>` is one bare path (served as index 'default') or a
comma-separated list of name=path pairs; `serve` attaches every entry,
`batch-query` picks one with --index (default: the first). `.pmlsh`
snapshots (detected by magic bytes) are loaded as pre-built indexes
with their saved parameters — no rebuild; files ending in .csv are
headerless CSV; anything else is fvecs.
`serve` speaks a newline-delimited protocol: `QUERY <k> <v1> ... <vd>` is
answered with `OK <id>:<dist>,...`; also PING, STATS, INDEXINFO,
LISTINDEXES, USE <name>, AUTH <token>, ATTACH <name> <path>,
DETACH <name>, REINDEX <path>, INSERT <v1..vd>, DELETE <id>,
SAVE <path> and QUIT (see docs/PROTOCOL.md). `HELLO binary` switches a
connection to a length-prefixed binary framing for QUERY/PING;
`batch-query --addr` runs a query file against a running server over
either framing and prints one `query <i>: id:dist,...` line per query,
so text and binary runs can be diffed. With --auth-token set, the
mutating verbs (ATTACH/DETACH/REINDEX/INSERT/DELETE/BATCH) and SAVE
require a prior AUTH on the connection. `save` snapshots an index to a `.pmlsh`
file: with --data it builds locally and writes --out; with --addr it
asks a running server to save its current index to a path writable by
the *server*. `reindex` asks a running server to rebuild onto a dataset
file readable by the *server* and swap it in without dropping queries;
`insert`/`delete` apply single-point mutations between rebuilds (each
publishes a fresh snapshot and bumps the INDEXINFO epoch).
`batch-mutate` streams a whole ops file — one `INSERT <v1> ... <vd>` or
`DELETE <id>` per line, blank lines and `#` comments skipped — through
the server's BATCH verb, which applies every op against one snapshot
clone and publishes once (one epoch bump per batch instead of one per
op); semantic per-op failures are reported as FAIL lines, syntactic
errors reject the whole batch unapplied.
`--threads 0` (the default) uses all available cores per index;
`--build-threads` parallelizes index construction (0 = all cores,
omitted = the single-threaded paper-faithful build). `--shards <n>`
partitions each dataset round-robin into n independent PM-LSH shards
queried scatter-gather (INDEXINFO reports shards=n); a sharded SAVE
writes a manifest plus one `.s<k>` file per shard, and serving that
manifest path restores the whole set. Single-file `.pmlsh` snapshots
always serve monolithic regardless of --shards.";

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("expected --flag, got '{key}'"));
        }
        let name = key.trim_start_matches("--").to_string();
        if name == "no-truth" || name == "binary" {
            map.insert(name, "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?;
        match map.entry(name) {
            // Only --data is list-valued: repeating it accumulates
            // comma-separated (`--data a=x --data b=y` == `--data
            // a=x,b=y`). Every other flag repeated is a mistake — reject
            // it rather than silently keeping (or worse, joining) one.
            std::collections::hash_map::Entry::Occupied(mut e) if e.key() == "data" => {
                let joined = e.get_mut();
                joined.push(',');
                joined.push_str(value);
            }
            std::collections::hash_map::Entry::Occupied(_) => {
                return Err(format!("{key} given more than once"));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(value.clone());
            }
        }
        i += 2;
    }
    Ok(map)
}

/// Parses a `--data` value: one bare path (index name `default`) or a
/// comma-separated list of `name=path` pairs, order preserved (the first
/// entry becomes the served default).
fn parse_data_specs(specs: &str) -> Result<Vec<(String, String)>, String> {
    let mut out: Vec<(String, String)> = Vec::new();
    for entry in specs.split(',') {
        if entry.is_empty() {
            return Err("--data holds an empty entry (stray comma?)".to_string());
        }
        let (name, path) = match entry.split_once('=') {
            Some((name, path)) => (name.to_string(), path.to_string()),
            None => ("default".to_string(), entry.to_string()),
        };
        Router::validate_name(&name).map_err(|e| e.to_string())?;
        if path.is_empty() {
            return Err(format!("--data entry '{entry}' has an empty path"));
        }
        if out.iter().any(|(existing, _)| *existing == name) {
            return Err(if name == "default" {
                "--data lists several bare paths; name them (name=path,...)".to_string()
            } else {
                format!("--data names index '{name}' twice")
            });
        }
        out.push((name, path));
    }
    Ok(out)
}

/// Rejects misspelled flags instead of silently ignoring them (a typo'd
/// `--thread 4` would otherwise run single-threaded without a word).
fn known_opts(opts: &HashMap<String, String>, allowed: &[&str]) -> Result<(), String> {
    for key in opts.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown option '--{key}'"));
        }
    }
    Ok(())
}

fn load(path: &str) -> Result<Dataset, String> {
    read_auto(path, None).map_err(|e| format!("reading {path}: {e}"))
}

fn save(path: &str, data: &Dataset) -> Result<(), String> {
    let p = Path::new(path);
    let result = if p.extension().is_some_and(|e| e == "csv") {
        write_csv(p, data)
    } else {
        write_fvecs(p, data)
    };
    result.map_err(|e| format!("writing {path}: {e}"))
}

fn dataset_by_name(name: &str) -> Result<PaperDataset, String> {
    Ok(match name.to_lowercase().as_str() {
        "audio" => PaperDataset::Audio,
        "deep" => PaperDataset::Deep,
        "nus" => PaperDataset::Nus,
        "mnist" => PaperDataset::Mnist,
        "gist" => PaperDataset::Gist,
        "cifar" => PaperDataset::Cifar,
        "trevi" => PaperDataset::Trevi,
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

fn cmd_gen(opts: &HashMap<String, String>) -> Result<(), String> {
    let dataset = dataset_by_name(opts.get("dataset").ok_or("gen needs --dataset")?)?;
    let out = opts.get("out").ok_or("gen needs --out")?;
    let scale = match opts.get("scale").map(|s| s.as_str()) {
        None | Some("smoke") => Scale::Smoke,
        Some("bench") => Scale::Bench,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale '{other}'")),
    };
    let generator = dataset.generator(scale);
    let data = generator.dataset();
    save(out, &data)?;
    println!("wrote {} points in R^{} to {out}", data.len(), data.dim());
    if let Some(qpath) = opts.get("queries") {
        let nq: usize = opts
            .get("nq")
            .map(|s| s.parse().map_err(|_| "--nq must be an integer"))
            .transpose()?
            .unwrap_or(100);
        let queries = generator.queries(nq);
        save(qpath, &queries)?;
        println!("wrote {nq} queries to {qpath}");
    }
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = load(opts.get("data").ok_or("stats needs --data")?)?;
    let mut rng = Rng::new(0xc11);
    let queries = 30.min(data.len() / 4).max(1);
    let start = Instant::now();
    let hv = homogeneity_of_viewpoints(data.view(), 24, 400.min(data.len()), &mut rng);
    let rc = relative_contrast(data.view(), queries, &mut rng);
    let lid = lid_mle(
        data.view(),
        queries,
        100.min(data.len() / 2).max(2),
        &mut rng,
    );
    println!("n   = {}", data.len());
    println!("d   = {}", data.dim());
    println!("HV  = {hv:.4}");
    println!("RC  = {rc:.2}");
    println!("LID = {lid:.1}");
    println!("({:.1} s)", start.elapsed().as_secs_f64());
    Ok(())
}

/// PM-LSH parameters at the paper's operating point when `c` is the
/// default 1.5, Eq. 10-derived otherwise.
fn pmlsh_params(c: f64) -> PmLshParams {
    if (c - 1.5).abs() < 1e-9 {
        PmLshParams::paper_defaults()
    } else {
        PmLshParams::default().with_c(c)
    }
}

fn build_algo(name: &str, data: Arc<Dataset>, c: f64) -> Result<Box<dyn AnnIndex>, String> {
    let pm_params = pmlsh_params(c);
    Ok(match name.to_lowercase().as_str() {
        "pm-lsh" | "pmlsh" => Box::new(PmLsh::build(data, pm_params)),
        "srs" => Box::new(Srs::build(
            data,
            SrsParams {
                c,
                ..SrsParams::paper_operating_point()
            },
        )),
        "qalsh" => Box::new(Qalsh::build(
            data,
            QalshParams {
                c,
                ..Default::default()
            },
        )),
        "multi-probe" | "multiprobe" => {
            Box::new(MultiProbe::build(data, MultiProbeParams::default()))
        }
        "r-lsh" | "rlsh" => Box::new(RLsh::build(data, pm_params)),
        "lscan" => Box::new(LScan::build(data, LScanParams::default())),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn parse_kc(opts: &HashMap<String, String>) -> Result<(usize, f64), String> {
    let k: usize = opts
        .get("k")
        .map(|s| s.parse().map_err(|_| "--k must be an integer"))
        .transpose()?
        .unwrap_or(10);
    Ok((k, parse_c(opts)?))
}

fn parse_c(opts: &HashMap<String, String>) -> Result<f64, String> {
    let c: f64 = opts
        .get("c")
        .map(|s| s.parse().map_err(|_| "--c must be a float"))
        .transpose()?
        .unwrap_or(1.5);
    if c <= 1.0 {
        return Err("--c must exceed 1.0".into());
    }
    Ok(c)
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = Arc::new(load(opts.get("data").ok_or("query needs --data")?)?);
    let queries = load(opts.get("queries").ok_or("query needs --queries")?)?;
    if queries.dim() != data.dim() {
        return Err(format!(
            "dimension mismatch: data R^{}, queries R^{}",
            data.dim(),
            queries.dim()
        ));
    }
    let (k, c) = parse_kc(opts)?;
    let algo_name = opts.get("algo").map(|s| s.as_str()).unwrap_or("pm-lsh");
    let with_truth = !opts.contains_key("no-truth");

    let start = Instant::now();
    let algo = build_algo(algo_name, data.clone(), c)?;
    println!(
        "built {} over {} points in {:.1} s",
        algo.name(),
        data.len(),
        start.elapsed().as_secs_f64()
    );

    let truth = if with_truth {
        Some(exact_knn_batch(data.view(), queries.view(), k, 0))
    } else {
        None
    };

    let start = Instant::now();
    let mut recall_sum = 0.0;
    let mut ratio_sum = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let res = algo.query(q, k);
        if qi < 3 {
            let ids: Vec<String> = res
                .neighbors
                .iter()
                .take(5)
                .map(|n| format!("{}:{:.3}", n.id, n.dist))
                .collect();
            println!("query {qi}: [{}]", ids.join(", "));
        }
        if let Some(t) = &truth {
            recall_sum += recall(&res.neighbors, &t[qi]);
            ratio_sum += overall_ratio(&res.neighbors, &t[qi]);
        }
    }
    let nq = queries.len() as f64;
    println!(
        "{} queries in {:.2} ms each",
        queries.len(),
        start.elapsed().as_secs_f64() * 1e3 / nq
    );
    if truth.is_some() {
        println!(
            "recall@{k} = {:.4}, overall ratio = {:.4}",
            recall_sum / nq,
            ratio_sum / nq
        );
    }
    Ok(())
}

fn parse_engine_config(opts: &HashMap<String, String>) -> Result<EngineConfig, String> {
    let mut config = EngineConfig::default();
    if let Some(t) = opts.get("threads") {
        config.threads = t.parse().map_err(|_| "--threads must be an integer")?;
    }
    if let Some(b) = opts.get("batch-size") {
        config.batch_size = b.parse().map_err(|_| "--batch-size must be an integer")?;
    }
    if let Some(w) = opts.get("max-wait-us") {
        let us: u64 = w.parse().map_err(|_| "--max-wait-us must be an integer")?;
        config.max_wait = std::time::Duration::from_micros(us);
    }
    Ok(config)
}

fn cmd_batch_query(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(addr) = opts.get("addr") {
        return wire_batch_query(addr, opts);
    }
    for flag in ["binary", "auth-token"] {
        if opts.contains_key(flag) {
            return Err(format!("--{flag} only applies with --addr (wire mode)"));
        }
    }
    let specs = parse_data_specs(opts.get("data").ok_or("batch-query needs --data")?)?;
    let (name, path) = match opts.get("index") {
        Some(wanted) => specs
            .iter()
            .find(|(name, _)| name == wanted)
            .ok_or_else(|| format!("--index '{wanted}' is not in --data"))?,
        None => &specs[0],
    };
    if specs.len() > 1 {
        println!("querying index '{name}' ({path})");
    }
    let (k, c) = parse_kc(opts)?;
    let config = parse_engine_config(opts)?;
    let build_threads = parse_build_threads(opts)?;
    let with_truth = !opts.contains_key("no-truth");

    let index = Arc::new(load_or_build_index(path, c, build_threads)?);
    let queries = load(opts.get("queries").ok_or("batch-query needs --queries")?)?;
    if queries.dim() != index.data().dim() {
        return Err(format!(
            "dimension mismatch: data R^{}, queries R^{}",
            index.data().dim(),
            queries.dim()
        ));
    }
    let engine = Engine::new(Arc::clone(&index), config);
    println!("engine: {} worker thread(s)", engine.threads());

    let query_vecs: Vec<&[f32]> = queries.iter().collect();
    let start = Instant::now();
    let results = engine.query_batch(&query_vecs, k);
    let elapsed = start.elapsed().as_secs_f64();
    let stats = engine.stats();
    println!(
        "{} queries in {:.3} s  ({:.0} queries/s, {:.3} ms each)",
        results.len(),
        elapsed,
        results.len() as f64 / elapsed,
        elapsed * 1e3 / results.len() as f64
    );
    println!("engine stats: {stats}");

    if with_truth {
        let truth = exact_knn_batch(index.data().view(), queries.view(), k, 0);
        let nq = results.len() as f64;
        let (mut recall_sum, mut ratio_sum) = (0.0, 0.0);
        for (res, t) in results.iter().zip(&truth) {
            recall_sum += recall(&res.neighbors, t);
            ratio_sum += overall_ratio(&res.neighbors, t);
        }
        println!(
            "recall@{k} = {:.4}, overall ratio = {:.4}",
            recall_sum / nq,
            ratio_sum / nq
        );
    }
    Ok(())
}

/// `batch-query --addr`: runs the query file against a *running* server
/// over the wire — newline text by default, length-prefixed binary with
/// `--binary`. Every result prints as `query <i>: id:dist,...` so a text
/// run and a binary run of the same file can be diffed line-for-line
/// (`{}` on an f32 is shortest-roundtrip, so rendering the binary reply's
/// bits locally reproduces the server's own text rendering exactly).
fn wire_batch_query(addr: &str, opts: &HashMap<String, String>) -> Result<(), String> {
    for flag in [
        "data",
        "c",
        "threads",
        "build-threads",
        "batch-size",
        "max-wait-us",
        "no-truth",
    ] {
        if opts.contains_key(flag) {
            return Err(format!(
                "--{flag} does not apply with --addr (the server owns the index)"
            ));
        }
    }
    let queries = load(opts.get("queries").ok_or("batch-query needs --queries")?)?;
    let k: usize = opts
        .get("k")
        .map(|s| s.parse().map_err(|_| "--k must be an integer"))
        .transpose()?
        .unwrap_or(10);
    let binary = opts.contains_key("binary");

    let mut client = WireClient::connect(addr)?;
    client.setup_session(opts)?;
    if binary {
        client.hello_binary()?;
    }

    let start = Instant::now();
    for (i, q) in queries.iter().enumerate() {
        let rendered = if binary {
            let pairs = client.query_binary(k as u32, q)?;
            let mut s = String::new();
            for (j, (id, dist)) in pairs.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{id}:{dist}"));
            }
            s
        } else {
            let mut line = String::from("QUERY ");
            line.push_str(&k.to_string());
            for v in q {
                line.push(' ');
                line.push_str(&v.to_string());
            }
            line.push('\n');
            let reply = client.exchange(line)?;
            match reply.strip_prefix("OK") {
                Some(payload) => payload.trim_start().to_string(),
                None => return Err(format!("server refused query {i}: {reply}")),
            }
        };
        println!("query {i}: {rendered}");
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "{} queries in {:.3} s  ({:.0} queries/s, {} framing)",
        queries.len(),
        elapsed,
        queries.len() as f64 / elapsed,
        if binary { "binary" } else { "text" }
    );
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let specs = parse_data_specs(opts.get("data").ok_or("serve needs --data")?)?;
    let port: u16 = opts
        .get("port")
        .ok_or("serve needs --port")?
        .parse()
        .map_err(|_| "--port must be 0..=65535")?;
    let c = parse_c(opts)?;
    let config = parse_engine_config(opts)?;
    let build_threads = parse_build_threads(opts)?;
    let max_connections: usize = opts
        .get("max-connections")
        .map(|s| {
            s.parse()
                .map_err(|_| "--max-connections must be an integer")
        })
        .transpose()?
        .unwrap_or_else(|| ServerConfig::default().max_connections);
    let drain_timeout = opts
        .get("drain-timeout-ms")
        .map(|s| {
            s.parse()
                .map_err(|_| "--drain-timeout-ms must be an integer")
        })
        .transpose()?
        .map(std::time::Duration::from_millis)
        .unwrap_or_else(|| ServerConfig::default().drain_timeout);

    let shards: usize = opts
        .get("shards")
        .map(|s| s.parse().map_err(|_| "--shards must be an integer"))
        .transpose()?
        .unwrap_or(1);
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }

    // The first --data entry becomes the default index new connections
    // start on (attach order = spec order).
    let router = Router::new();
    for (name, path) in &specs {
        print!("[{name}] ");
        let engine = load_or_build_engine(path, c, build_threads, shards, config)?;
        router.attach(name, engine).map_err(|e| e.to_string())?;
    }

    let auth_token = opts.get("auth-token").cloned();
    if auth_token.as_deref() == Some("") {
        return Err("--auth-token must not be empty (omit it to serve open)".into());
    }
    let max_connections_per_index: usize = opts
        .get("max-index-connections")
        .map(|s| {
            s.parse()
                .map_err(|_| "--max-index-connections must be an integer")
        })
        .transpose()?
        .unwrap_or_else(|| ServerConfig::default().max_connections_per_index);
    let server_config = ServerConfig {
        max_connections,
        max_connections_per_index,
        drain_timeout,
        auth_token,
        // Wire ATTACHes inherit the CLI's parameters and engine tuning.
        attach_params: pmlsh_params(c),
        attach_engine_config: config,
    };
    let authed = server_config.auth_token.is_some();
    let handle = serve_router(router.clone(), ("0.0.0.0", port), server_config)
        .map_err(|e| format!("binding port {port}: {e}"))?;
    println!(
        "serving {} index(es) [{}] on {} ({} worker thread(s) each, max {max_connections} \
         connections, mutating verbs {}); protocol: QUERY <k> <v1..vd> | PING | STATS | \
         INDEXINFO | LISTINDEXES | USE | AUTH | ATTACH | DETACH | REINDEX | INSERT | \
         DELETE | BATCH | SAVE | QUIT",
        router.len(),
        router.names().join(","),
        handle.addr(),
        config.effective_threads(),
        if authed { "AUTH-gated" } else { "open" },
    );
    handle.join();
    Ok(())
}

/// `pmlsh save` — snapshot an index to a versioned, checksummed `.pmlsh`
/// file. Two modes: `--data` builds locally and writes `--out`; `--addr`
/// sends the `SAVE` verb to a running server, which writes `--out` on
/// *its* filesystem (auth-gated when the server has a token).
fn cmd_save(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = opts.get("out").ok_or("save needs --out <file.pmlsh>")?;
    match (opts.get("addr"), opts.get("data")) {
        (Some(_), Some(_)) => {
            Err("save takes --data (local build) or --addr (running server), not both".into())
        }
        (None, None) => Err("save needs --data <file> or --addr <host:port>".into()),
        (Some(addr), None) => {
            for flag in ["c", "build-threads"] {
                if opts.contains_key(flag) {
                    return Err(format!(
                        "--{flag} only applies to a local save (the server keeps its own \
                         parameters)"
                    ));
                }
            }
            if out.chars().any(|ch| ch.is_ascii_whitespace()) {
                return Err("the wire protocol cannot carry whitespace in paths".into());
            }
            let mut client = WireClient::connect(addr)?;
            client.setup_session(opts)?;
            let reply = client.exchange(format!("SAVE {out}\n"))?;
            if let Some(err) = reply.strip_prefix("ERR ") {
                return Err(format!("server refused: {err}"));
            }
            println!("{reply}");
            Ok(())
        }
        (None, Some(data_path)) => {
            for flag in ["index", "auth-token"] {
                if opts.contains_key(flag) {
                    return Err(format!("--{flag} only applies with --addr"));
                }
            }
            let c = parse_c(opts)?;
            let build_threads = parse_build_threads(opts)?;
            let index = load_or_build_index(data_path, c, build_threads)?;
            let start = Instant::now();
            let report = index.save(out).map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "wrote {} points ({} bytes) to {out} in {:.2} s",
                report.points,
                report.bytes,
                start.elapsed().as_secs_f64()
            );
            Ok(())
        }
    }
}

/// Materializes `path` as a ready-to-serve index. A `.pmlsh` snapshot
/// (detected by magic bytes, not extension) deserializes in milliseconds
/// with its *saved* parameters — `--c`/`--build-threads` do not apply;
/// anything else is read as a dataset (fvecs/csv) and built from scratch.
fn load_or_build_index(path: &str, c: f64, build_threads: Option<usize>) -> Result<PmLsh, String> {
    let start = Instant::now();
    if pm_lsh::persist::is_pmlsh_file(path) {
        let index = PmLsh::load(path).map_err(|e| format!("reading {path}: {e}"))?;
        println!(
            "loaded .pmlsh snapshot {path}: {} points in R^{} in {:.3} s",
            index.len(),
            index.data().dim(),
            start.elapsed().as_secs_f64()
        );
        Ok(index)
    } else {
        let data = Arc::new(load(path)?);
        let index = build_pmlsh(data, c, build_threads);
        println!(
            "built PM-LSH over {} points in R^{} in {:.1} s ({path})",
            index.len(),
            index.data().dim(),
            start.elapsed().as_secs_f64()
        );
        Ok(index)
    }
}

/// Materializes `path` as a ready-to-serve engine, honoring `--shards`.
///
/// A sharded manifest (magic bytes) restores its whole shard set; a
/// single-file `.pmlsh` snapshot serves monolithic (its shape is fixed at
/// save time — `--shards` does not re-partition it); a dataset file is
/// partitioned round-robin into `shards` independent indexes when
/// `shards > 1` and built monolithic otherwise.
fn load_or_build_engine(
    path: &str,
    c: f64,
    build_threads: Option<usize>,
    shards: usize,
    config: EngineConfig,
) -> Result<ShardedEngine, String> {
    if pm_lsh::persist::is_manifest_file(path) {
        let start = Instant::now();
        let parts =
            pm_lsh::persist::load_sharded(path).map_err(|e| format!("reading {path}: {e}"))?;
        let engine = ShardedEngine::from_indexes(parts, config);
        println!(
            "loaded sharded manifest {path}: {} points in R^{} across {} shard(s) in {:.3} s",
            engine.len(),
            engine.dim(),
            engine.shard_count(),
            start.elapsed().as_secs_f64()
        );
        return Ok(engine);
    }
    if shards == 1 || pm_lsh::persist::is_pmlsh_file(path) {
        return Ok(Engine::new(load_or_build_index(path, c, build_threads)?, config).into());
    }
    let start = Instant::now();
    let data = load(path)?;
    if data.len() < shards {
        return Err(format!(
            "--shards {shards} exceeds the {} point(s) in {path}",
            data.len()
        ));
    }
    let opts = match build_threads {
        Some(threads) => BuildOptions::with_threads(threads),
        None => BuildOptions::default(),
    };
    let engine = ShardedEngine::build(&data, pmlsh_params(c), opts, shards, config);
    println!(
        "built PM-LSH over {} points in R^{} as {shards} shard(s) in {:.1} s ({path})",
        engine.len(),
        engine.dim(),
        start.elapsed().as_secs_f64()
    );
    Ok(engine)
}

/// Builds the PM-LSH index, routing through the parallel bulk loader when
/// `--build-threads` was given (0 = all cores) and the classic
/// single-threaded incremental build otherwise.
fn build_pmlsh(data: Arc<Dataset>, c: f64, build_threads: Option<usize>) -> PmLsh {
    match build_threads {
        Some(threads) => {
            PmLsh::build_with_opts(data, pmlsh_params(c), BuildOptions::with_threads(threads))
        }
        None => PmLsh::build(data, pmlsh_params(c)),
    }
}

fn parse_build_threads(opts: &HashMap<String, String>) -> Result<Option<usize>, String> {
    opts.get("build-threads")
        .map(|s| {
            s.parse()
                .map_err(|_| "--build-threads must be an integer".to_string())
        })
        .transpose()
}

/// A newline-delimited protocol client over one TCP connection, shared by
/// the `reindex`, `insert` and `delete` subcommands (auth and the current
/// index are per-connection server state, so each command runs its whole
/// session on a single connection).
struct WireClient {
    addr: String,
    reader: std::io::BufReader<std::net::TcpStream>,
    writer: std::net::TcpStream,
}

impl WireClient {
    fn connect(addr: &str) -> Result<Self, String> {
        let stream =
            std::net::TcpStream::connect(addr).map_err(|e| format!("connecting {addr}: {e}"))?;
        let reader = std::io::BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        Ok(Self {
            addr: addr.to_string(),
            reader,
            writer: stream,
        })
    }

    fn exchange(&mut self, request: String) -> Result<String, String> {
        use std::io::Write;
        self.writer
            .write_all(request.as_bytes())
            .map_err(|e| format!("sending to {}: {e}", self.addr))?;
        self.recv_line()
    }

    /// Reads one reply line without sending anything. `BATCH` replies span
    /// `1 + failed` lines, so the FAIL lines are drained with extra reads.
    fn recv_line(&mut self) -> Result<String, String> {
        use std::io::BufRead;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| format!("reading from {}: {e}", self.addr))?;
        if n == 0 {
            // EOF before a reply line: the server dropped the connection
            // (e.g. the request tripped the line cap). Silence must not
            // look like success to scripts checking our exit code.
            return Err(format!(
                "{} closed the connection without replying",
                self.addr
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Switches this connection to the length-prefixed binary framing.
    /// Must run after `setup_session` (AUTH/USE are text-only verbs).
    fn hello_binary(&mut self) -> Result<(), String> {
        let reply = self.exchange("HELLO binary\n".to_string())?;
        if reply != "OK binary" {
            return Err(format!("{}: HELLO binary refused: {reply}", self.addr));
        }
        Ok(())
    }

    /// One binary QUERY round-trip; returns the (id, distance) pairs.
    fn query_binary(&mut self, k: u32, query: &[f32]) -> Result<Vec<(u64, f32)>, String> {
        use std::io::{Read, Write};
        let mut framed = Vec::new();
        pm_lsh::engine::frame::encode_query(k, query, &mut framed);
        self.writer
            .write_all(&framed)
            .map_err(|e| format!("sending to {}: {e}", self.addr))?;
        let mut prefix = [0u8; 4];
        self.reader
            .read_exact(&mut prefix)
            .map_err(|e| format!("reading from {}: {e}", self.addr))?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len > 1 << 20 {
            return Err(format!(
                "{} sent an implausible {len}-byte reply frame",
                self.addr
            ));
        }
        let mut payload = vec![0u8; len];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| format!("reading from {}: {e}", self.addr))?;
        match pm_lsh::engine::frame::decode_reply(&payload)
            .map_err(|e| format!("{} sent a bad frame: {e}", self.addr))?
        {
            pm_lsh::engine::frame::Reply::Ok(pairs) => Ok(pairs),
            pm_lsh::engine::frame::Reply::Err(msg) => Err(format!("server refused: {msg}")),
            pm_lsh::engine::frame::Reply::Pong => {
                Err(format!("{} answered QUERY with PONG", self.addr))
            }
        }
    }

    /// Establishes the per-connection session state: `AUTH` when
    /// `--auth-token` was given, `USE` when `--index` was.
    fn setup_session(&mut self, opts: &HashMap<String, String>) -> Result<(), String> {
        if let Some(token) = opts.get("auth-token") {
            let reply = self.exchange(format!("AUTH {token}\n"))?;
            if let Some(err) = reply.strip_prefix("ERR ") {
                return Err(format!("authentication failed: {err}"));
            }
        }
        if let Some(index) = opts.get("index") {
            let reply = self.exchange(format!("USE {index}\n"))?;
            if let Some(err) = reply.strip_prefix("ERR ") {
                return Err(format!("selecting index '{index}': {err}"));
            }
        }
        Ok(())
    }
}

fn cmd_reindex(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("reindex needs --addr <host:port>")?;
    let data = opts.get("data").ok_or("reindex needs --data <path>")?;
    if data.chars().any(|ch| ch.is_ascii_whitespace()) {
        return Err("the wire protocol cannot carry whitespace in paths".into());
    }
    let mut client = WireClient::connect(addr)?;
    client.setup_session(opts)?;

    println!("asking {addr} to reindex onto {data} (server-side path) ...");
    let reply = client.exchange(format!("REINDEX {data}\n"))?;
    if let Some(err) = reply.strip_prefix("ERR ") {
        return Err(format!("server refused: {err}"));
    }
    println!("{reply}");
    println!("{}", client.exchange("INDEXINFO\n".to_string())?);
    Ok(())
}

fn cmd_insert(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("insert needs --addr <host:port>")?;
    let vector = opts
        .get("vector")
        .ok_or("insert needs --vector v1,v2,...")?;
    // Parse locally first: a malformed component should fail before any
    // network traffic, with a message naming the component.
    let mut components = Vec::new();
    for field in vector.split(',') {
        match field.trim().parse::<f32>() {
            Ok(v) if v.is_finite() => components.push(v),
            _ => return Err(format!("--vector holds a bad component '{field}'")),
        }
    }
    if components.is_empty() {
        return Err("--vector must hold at least one component".into());
    }
    let mut client = WireClient::connect(addr)?;
    client.setup_session(opts)?;

    let mut line = String::from("INSERT");
    for v in &components {
        line.push(' ');
        line.push_str(&v.to_string());
    }
    line.push('\n');
    let reply = client.exchange(line)?;
    if let Some(err) = reply.strip_prefix("ERR ") {
        return Err(format!("server refused: {err}"));
    }
    println!("{reply}");
    println!("{}", client.exchange("INDEXINFO\n".to_string())?);
    Ok(())
}

fn cmd_delete(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts.get("addr").ok_or("delete needs --addr <host:port>")?;
    let id: u32 = opts
        .get("id")
        .ok_or("delete needs --id <point id>")?
        .parse()
        .map_err(|_| "--id must be a non-negative integer")?;
    let mut client = WireClient::connect(addr)?;
    client.setup_session(opts)?;

    let reply = client.exchange(format!("DELETE {id}\n"))?;
    if let Some(err) = reply.strip_prefix("ERR ") {
        return Err(format!("server refused: {err}"));
    }
    println!("{reply}");
    println!("{}", client.exchange("INDEXINFO\n".to_string())?);
    Ok(())
}

fn cmd_batch_mutate(opts: &HashMap<String, String>) -> Result<(), String> {
    let addr = opts
        .get("addr")
        .ok_or("batch-mutate needs --addr <host:port>")?;
    let path = opts.get("ops").ok_or("batch-mutate needs --ops <file>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;

    // Validate locally first, like `insert` does for --vector: a malformed
    // op line should fail before any network traffic, with a message naming
    // the file line — the server would reject the whole batch anyway
    // (syntactic errors are all-or-nothing).
    let mut ops: Vec<&str> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| format!("{path}:{}: {msg}", lineno + 1);
        let mut fields = line.split_ascii_whitespace();
        match fields.next() {
            Some("INSERT") => {
                let mut components = 0usize;
                for field in fields {
                    match field.parse::<f32>() {
                        Ok(v) if v.is_finite() => components += 1,
                        _ => return Err(at(format!("bad vector component '{field}'"))),
                    }
                }
                if components == 0 {
                    return Err(at("INSERT needs at least one component".into()));
                }
            }
            Some("DELETE") => match (fields.next().map(str::parse::<u32>), fields.next()) {
                (Some(Ok(_)), None) => {}
                _ => return Err(at("DELETE takes exactly one point id".into())),
            },
            Some(other) => {
                return Err(at(format!("unknown batch op '{other}' (INSERT or DELETE)")));
            }
            None => unreachable!("blank lines are skipped above"),
        }
        ops.push(line);
    }
    if ops.is_empty() {
        return Err(format!(
            "{path} holds no ops (blank lines and '#' comments are skipped)"
        ));
    }

    let mut client = WireClient::connect(addr)?;
    client.setup_session(opts)?;

    // The whole batch is one request: the header line, then every op line.
    // The server replies once, after the last op line arrives.
    let mut request = format!("BATCH {}\n", ops.len());
    for op in &ops {
        request.push_str(op);
        request.push('\n');
    }
    println!("sending {} ops to {addr} as one batch ...", ops.len());
    let reply = client.exchange(request)?;
    if let Some(err) = reply.strip_prefix("ERR ") {
        return Err(format!("server refused: {err}"));
    }
    println!("{reply}");
    // `OK applied=<a> failed=<f> epoch=<e> points=<n>`: <f> FAIL lines
    // follow the summary, one per op the server rejected semantically.
    let failed: usize = reply
        .split_ascii_whitespace()
        .find_map(|field| field.strip_prefix("failed="))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("unparseable batch reply '{reply}'"))?;
    for _ in 0..failed {
        println!("{}", client.recv_line()?);
    }
    println!("{}", client.exchange("INDEXINFO\n".to_string())?);
    Ok(())
}

fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = Arc::new(load(opts.get("data").ok_or("bench needs --data")?)?);
    let queries = load(opts.get("queries").ok_or("bench needs --queries")?)?;
    let (k, c) = parse_kc(opts)?;
    let truth = exact_knn_batch(data.view(), queries.view(), k, 0);

    println!(
        "{:<12} {:>9} {:>10} {:>8} {:>8}",
        "algorithm", "build(s)", "ms/query", "recall", "ratio"
    );
    for name in ["pm-lsh", "srs", "qalsh", "multi-probe", "r-lsh", "lscan"] {
        let b0 = Instant::now();
        let algo = build_algo(name, data.clone(), c)?;
        let build_s = b0.elapsed().as_secs_f64();
        let q0 = Instant::now();
        let mut recall_sum = 0.0;
        let mut ratio_sum = 0.0;
        for (qi, q) in queries.iter().enumerate() {
            let res = algo.query(q, k);
            recall_sum += recall(&res.neighbors, &truth[qi]);
            ratio_sum += overall_ratio(&res.neighbors, &truth[qi]);
        }
        let nq = queries.len() as f64;
        println!(
            "{:<12} {:>9.2} {:>10.3} {:>8.4} {:>8.4}",
            algo.name(),
            build_s,
            q0.elapsed().as_secs_f64() * 1e3 / nq,
            recall_sum / nq,
            ratio_sum / nq
        );
    }
    Ok(())
}
