//! `pmlsh` — command-line interface to the PM-LSH workspace.
//!
//! ```text
//! pmlsh gen    --dataset cifar --scale smoke --out data.fvecs [--queries queries.fvecs --nq 100]
//! pmlsh stats  --data data.fvecs
//! pmlsh query  --data data.fvecs --queries queries.fvecs --k 10 [--c 1.5] [--algo pm-lsh]
//! pmlsh bench  --data data.fvecs --queries queries.fvecs --k 10
//! ```
//!
//! Files ending in `.csv` are parsed as headerless CSV; anything else as
//! little-endian `fvecs` (the TEXMEX format the paper's real datasets ship
//! in), so the same binary drives both the synthetic stand-ins and the real
//! datasets when available.

use pm_lsh::prelude::*;
use pm_lsh::data::{read_csv, read_fvecs, write_csv, write_fvecs};
use pm_lsh::stats::dataset_stats::{homogeneity_of_viewpoints, lid_mle, relative_contrast};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "stats" => cmd_stats(&opts),
        "query" => cmd_query(&opts),
        "bench" => cmd_bench(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pmlsh — PM-LSH approximate nearest-neighbor search

USAGE:
  pmlsh gen    --dataset <audio|deep|nus|mnist|gist|cifar|trevi> --out <file>
               [--scale smoke|bench|full] [--queries <file>] [--nq <n>]
  pmlsh stats  --data <file>
  pmlsh query  --data <file> --queries <file> [--k <n>] [--c <ratio>]
               [--algo pm-lsh|srs|qalsh|multi-probe|r-lsh|lscan] [--no-truth]
  pmlsh bench  --data <file> --queries <file> [--k <n>] [--c <ratio>]

Files ending in .csv are headerless CSV; anything else is fvecs.";

fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("expected --flag, got '{key}'"));
        }
        let name = key.trim_start_matches("--").to_string();
        if name == "no-truth" {
            map.insert(name, "true".to_string());
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("missing value for {key}"))?;
        map.insert(name, value.clone());
        i += 2;
    }
    Ok(map)
}

fn load(path: &str) -> Result<Dataset, String> {
    let p = Path::new(path);
    let result = if p.extension().is_some_and(|e| e == "csv") {
        read_csv(p, None)
    } else {
        read_fvecs(p, None)
    };
    result.map_err(|e| format!("reading {path}: {e}"))
}

fn save(path: &str, data: &Dataset) -> Result<(), String> {
    let p = Path::new(path);
    let result = if p.extension().is_some_and(|e| e == "csv") {
        write_csv(p, data)
    } else {
        write_fvecs(p, data)
    };
    result.map_err(|e| format!("writing {path}: {e}"))
}

fn dataset_by_name(name: &str) -> Result<PaperDataset, String> {
    Ok(match name.to_lowercase().as_str() {
        "audio" => PaperDataset::Audio,
        "deep" => PaperDataset::Deep,
        "nus" => PaperDataset::Nus,
        "mnist" => PaperDataset::Mnist,
        "gist" => PaperDataset::Gist,
        "cifar" => PaperDataset::Cifar,
        "trevi" => PaperDataset::Trevi,
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

fn cmd_gen(opts: &HashMap<String, String>) -> Result<(), String> {
    let dataset = dataset_by_name(opts.get("dataset").ok_or("gen needs --dataset")?)?;
    let out = opts.get("out").ok_or("gen needs --out")?;
    let scale = match opts.get("scale").map(|s| s.as_str()) {
        None | Some("smoke") => Scale::Smoke,
        Some("bench") => Scale::Bench,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale '{other}'")),
    };
    let generator = dataset.generator(scale);
    let data = generator.dataset();
    save(out, &data)?;
    println!("wrote {} points in R^{} to {out}", data.len(), data.dim());
    if let Some(qpath) = opts.get("queries") {
        let nq: usize = opts
            .get("nq")
            .map(|s| s.parse().map_err(|_| "--nq must be an integer"))
            .transpose()?
            .unwrap_or(100);
        let queries = generator.queries(nq);
        save(qpath, &queries)?;
        println!("wrote {nq} queries to {qpath}");
    }
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = load(opts.get("data").ok_or("stats needs --data")?)?;
    let mut rng = Rng::new(0xc11);
    let queries = 30.min(data.len() / 4).max(1);
    let start = Instant::now();
    let hv = homogeneity_of_viewpoints(data.view(), 24, 400.min(data.len()), &mut rng);
    let rc = relative_contrast(data.view(), queries, &mut rng);
    let lid = lid_mle(data.view(), queries, 100.min(data.len() / 2).max(2), &mut rng);
    println!("n   = {}", data.len());
    println!("d   = {}", data.dim());
    println!("HV  = {hv:.4}");
    println!("RC  = {rc:.2}");
    println!("LID = {lid:.1}");
    println!("({:.1} s)", start.elapsed().as_secs_f64());
    Ok(())
}

fn build_algo(
    name: &str,
    data: Arc<Dataset>,
    c: f64,
) -> Result<Box<dyn AnnIndex>, String> {
    let pm_params = if (c - 1.5).abs() < 1e-9 {
        PmLshParams::paper_defaults()
    } else {
        PmLshParams::default().with_c(c)
    };
    Ok(match name.to_lowercase().as_str() {
        "pm-lsh" | "pmlsh" => Box::new(PmLsh::build(data, pm_params)),
        "srs" => Box::new(Srs::build(data, SrsParams { c, ..SrsParams::paper_operating_point() })),
        "qalsh" => Box::new(Qalsh::build(data, QalshParams { c, ..Default::default() })),
        "multi-probe" | "multiprobe" => {
            Box::new(MultiProbe::build(data, MultiProbeParams::default()))
        }
        "r-lsh" | "rlsh" => Box::new(RLsh::build(data, pm_params)),
        "lscan" => Box::new(LScan::build(data, LScanParams::default())),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

fn parse_kc(opts: &HashMap<String, String>) -> Result<(usize, f64), String> {
    let k: usize = opts
        .get("k")
        .map(|s| s.parse().map_err(|_| "--k must be an integer"))
        .transpose()?
        .unwrap_or(10);
    let c: f64 = opts
        .get("c")
        .map(|s| s.parse().map_err(|_| "--c must be a float"))
        .transpose()?
        .unwrap_or(1.5);
    if c <= 1.0 {
        return Err("--c must exceed 1.0".into());
    }
    Ok((k, c))
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = Arc::new(load(opts.get("data").ok_or("query needs --data")?)?);
    let queries = load(opts.get("queries").ok_or("query needs --queries")?)?;
    if queries.dim() != data.dim() {
        return Err(format!(
            "dimension mismatch: data R^{}, queries R^{}",
            data.dim(),
            queries.dim()
        ));
    }
    let (k, c) = parse_kc(opts)?;
    let algo_name = opts.get("algo").map(|s| s.as_str()).unwrap_or("pm-lsh");
    let with_truth = !opts.contains_key("no-truth");

    let start = Instant::now();
    let algo = build_algo(algo_name, data.clone(), c)?;
    println!("built {} over {} points in {:.1} s", algo.name(), data.len(),
        start.elapsed().as_secs_f64());

    let truth = if with_truth {
        Some(exact_knn_batch(data.view(), queries.view(), k, 0))
    } else {
        None
    };

    let start = Instant::now();
    let mut recall_sum = 0.0;
    let mut ratio_sum = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let res = algo.query(q, k);
        if qi < 3 {
            let ids: Vec<String> =
                res.neighbors.iter().take(5).map(|n| format!("{}:{:.3}", n.id, n.dist)).collect();
            println!("query {qi}: [{}]", ids.join(", "));
        }
        if let Some(t) = &truth {
            recall_sum += recall(&res.neighbors, &t[qi]);
            ratio_sum += overall_ratio(&res.neighbors, &t[qi]);
        }
    }
    let nq = queries.len() as f64;
    println!("{} queries in {:.2} ms each", queries.len(),
        start.elapsed().as_secs_f64() * 1e3 / nq);
    if truth.is_some() {
        println!("recall@{k} = {:.4}, overall ratio = {:.4}", recall_sum / nq, ratio_sum / nq);
    }
    Ok(())
}

fn cmd_bench(opts: &HashMap<String, String>) -> Result<(), String> {
    let data = Arc::new(load(opts.get("data").ok_or("bench needs --data")?)?);
    let queries = load(opts.get("queries").ok_or("bench needs --queries")?)?;
    let (k, c) = parse_kc(opts)?;
    let truth = exact_knn_batch(data.view(), queries.view(), k, 0);

    println!(
        "{:<12} {:>9} {:>10} {:>8} {:>8}",
        "algorithm", "build(s)", "ms/query", "recall", "ratio"
    );
    for name in ["pm-lsh", "srs", "qalsh", "multi-probe", "r-lsh", "lscan"] {
        let b0 = Instant::now();
        let algo = build_algo(name, data.clone(), c)?;
        let build_s = b0.elapsed().as_secs_f64();
        let q0 = Instant::now();
        let mut recall_sum = 0.0;
        let mut ratio_sum = 0.0;
        for (qi, q) in queries.iter().enumerate() {
            let res = algo.query(q, k);
            recall_sum += recall(&res.neighbors, &truth[qi]);
            ratio_sum += overall_ratio(&res.neighbors, &truth[qi]);
        }
        let nq = queries.len() as f64;
        println!(
            "{:<12} {:>9.2} {:>10.3} {:>8.4} {:>8.4}",
            algo.name(),
            build_s,
            q0.elapsed().as_secs_f64() * 1e3 / nq,
            recall_sum / nq,
            ratio_sum / nq
        );
    }
    Ok(())
}
